//! Shared clock-domain inference over a structural [`Netlist`].
//!
//! Both the static CDC lint pass (`mtf-lint`) and the sharded simulation
//! planner (`mtf-sim::shard` via `mtf-lis`) need the same answer to the
//! same question: *which clock domain does each sequential element launch
//! from, and where do domains touch?* Keeping two copies of that
//! traversal invites them to disagree — lint would then certify a
//! partitioning the simulator does not actually use. This module is the
//! single implementation; `mtf-lint`'s model delegates to it, and
//! `mtf-core` re-exports it for the experiment binaries.
//!
//! The inference is purely structural (nothing is ever simulated):
//!
//! * [`DomainGraph::clock_root`] — walk a clock pin backwards through
//!   single-input buffers/inverters to the root net of its clock tree;
//! * [`DomainGraph::launch_domain`] — the domain an instance's outputs
//!   launch from (its clock root for edge-triggered cells,
//!   [`Domain::Async`] for latches/C-elements/macros, `None` for
//!   combinational cells);
//! * [`DomainGraph::sequential_sources`] — the sequential launch points
//!   reachable backwards from a net through combinational cells only;
//! * [`DomainGraph::partition`] — group instances by launch domain and
//!   report every net that crosses between groups, with the honest
//!   verdict on whether the netlist can be sharded at gate level.

use std::collections::HashSet;

use mtf_sim::{NetId, Simulator};

use crate::kind::CellKind;
use crate::netlist::{InstanceId, Netlist};

/// The clock domain of a sequential element.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Domain {
    /// Rooted at a clock net (by raw net index): every element whose
    /// clock pin traces back through buffers/inverters to this net.
    Clock(usize),
    /// No clock: level-sensitive latches, C-elements, SR latches and
    /// behavioural macro controllers. Their outputs move whenever their
    /// environment does, so for CDC purposes they are a domain of their
    /// own that every synchronous consumer must synchronize against.
    Async,
}

/// A borrowed, indexed view of one elaborated design — everything the
/// domain traversals need, without owning any of it. `mtf-lint` builds
/// one from its `LintModel`; standalone users go through
/// [`DomainIndex::graph`].
#[derive(Debug)]
pub struct DomainGraph<'a> {
    /// The structural netlist.
    pub netlist: &'a Netlist,
    /// Per-net driving instances (index = raw net index).
    pub drivers: &'a [Vec<InstanceId>],
    /// Per-net behavioural driver count from the simulator (clock
    /// generators, constants, macro engines, testbench drivers —
    /// everything the netlist cannot see).
    pub sim_drivers: &'a [usize],
    /// Declared external input nets (ports): clock-domain roots in their
    /// own right.
    pub inputs: &'a HashSet<usize>,
}

/// Owned backing storage for a [`DomainGraph`] built directly from a
/// netlist and the simulator it was elaborated against (for callers that
/// do not already index the netlist, e.g. `mtf_core::partition_design`).
#[derive(Debug)]
pub struct DomainIndex<'n> {
    netlist: &'n Netlist,
    drivers: Vec<Vec<InstanceId>>,
    sim_drivers: Vec<usize>,
    inputs: HashSet<usize>,
}

impl<'n> DomainIndex<'n> {
    /// Indexes `netlist` against `sim`. Declare external ports with
    /// [`DomainIndex::declare_input`] before taking the graph.
    pub fn new(netlist: &'n Netlist, sim: &Simulator) -> Self {
        let net_count = sim.net_count();
        DomainIndex {
            netlist,
            drivers: netlist.driver_map(net_count),
            sim_drivers: (0..net_count)
                .map(|i| sim.driver_count(NetId::from_index(i)))
                .collect(),
            inputs: HashSet::new(),
        }
    }

    /// Declares `net` an externally driven input port.
    pub fn declare_input(&mut self, net: NetId) {
        self.inputs.insert(net.index());
    }

    /// The borrowed traversal view.
    pub fn graph(&self) -> DomainGraph<'_> {
        DomainGraph {
            netlist: self.netlist,
            drivers: &self.drivers,
            sim_drivers: &self.sim_drivers,
            inputs: &self.inputs,
        }
    }
}

impl DomainGraph<'_> {
    /// Follows a clock pin backwards through single-input buffer and
    /// inverter instances to the root net of its clock tree. Externally
    /// driven nets (ports, behavioural clock generators) terminate the
    /// walk, as does anything that is not a plain Buf/Inv.
    pub fn clock_root(&self, net: NetId) -> usize {
        let mut cur = net.index();
        let mut hops = 0;
        loop {
            // A behavioural driver (clock generator / port) roots here even
            // if an instance also drives the net (never the case today).
            if self.sim_drivers[cur] > self.drivers[cur].len() || self.inputs.contains(&cur) {
                return cur;
            }
            match self.drivers[cur].as_slice() {
                [one] => {
                    let i = self.netlist.instance(*one);
                    let through =
                        matches!(i.kind, CellKind::Buf | CellKind::Inv) && i.data_in.len() == 1;
                    if !through || hops > 64 {
                        return cur;
                    }
                    cur = i.data_in[0].index();
                    hops += 1;
                }
                _ => return cur,
            }
        }
    }

    /// The clock domain an instance *launches* from: its clock root for
    /// edge-triggered cells, [`Domain::Async`] for every other sequential
    /// cell and for behavioural macros. `None` for combinational cells.
    pub fn launch_domain(&self, id: InstanceId) -> Option<Domain> {
        let i = self.netlist.instance(id);
        if i.kind.is_edge_triggered() {
            let clk = i.clock?;
            Some(Domain::Clock(self.clock_root(clk)))
        } else if i.kind.is_state_holding() || i.kind == CellKind::Macro {
            Some(Domain::Async)
        } else {
            None
        }
    }

    /// Appends to `out` the sequential sources reachable backwards from
    /// `net` through combinational cells only. State-holding cells,
    /// macros and clocked cells terminate the walk (they launch; their
    /// own inputs belong to *their* crossing analysis).
    pub fn sequential_sources(&self, net: usize, out: &mut Vec<(InstanceId, Domain)>) {
        let mut stack = vec![net];
        let mut seen_nets = HashSet::new();
        let mut seen_sources = HashSet::new();
        while let Some(n) = stack.pop() {
            if !seen_nets.insert(n) {
                continue;
            }
            for &d in &self.drivers[n] {
                match self.launch_domain(d) {
                    Some(domain) => {
                        if seen_sources.insert(d) {
                            out.push((d, domain));
                        }
                    }
                    None => {
                        // Combinational: keep walking its inputs.
                        for &i in &self.netlist.instance(d).data_in {
                            stack.push(i.index());
                        }
                    }
                }
            }
        }
    }

    /// Every distinct launch domain, with its sequential-instance count,
    /// in first-seen (placement) order.
    pub fn census(&self) -> Vec<(Domain, usize)> {
        let mut out: Vec<(Domain, usize)> = Vec::new();
        for idx in 0..self.netlist.len() {
            if let Some(d) = self.launch_domain(InstanceId::from_index(idx)) {
                match out.iter_mut().find(|(dd, _)| *dd == d) {
                    Some((_, n)) => *n += 1,
                    None => out.push((d, 1)),
                }
            }
        }
        out
    }

    /// Groups the netlist by launch domain and reports every data input
    /// of a sequential consumer whose backward cone reaches a launch in a
    /// *different* domain — the nets at which the domains touch.
    ///
    /// The verdict is deliberately conservative: a gate-level netlist is
    /// only shardable when its domains share **no** nets at all (then each
    /// domain is an independent island). The paper's FIFO designs are the
    /// opposite — their whole point is a dense, synchronized weave of
    /// cross-domain control — so for them this honestly reports one
    /// effective shard. Cutting *between* composed designs at their
    /// latency-insensitive stream boundaries is chain-level knowledge
    /// (`ChainSpec`), which is where `mtf-lis` shards instead.
    pub fn partition(&self) -> PartitionReport {
        let domains = self.census();
        let mut cross: Vec<CrossDomainNet> = Vec::new();
        let mut seen = HashSet::new();
        for idx in 0..self.netlist.len() {
            let id = InstanceId::from_index(idx);
            let Some(dest) = self.launch_domain(id) else {
                continue;
            };
            let inst = self.netlist.instance(id);
            let mut sources = Vec::new();
            for &pin in &inst.data_in {
                sources.push((pin, {
                    let mut s = Vec::new();
                    self.sequential_sources(pin.index(), &mut s);
                    s
                }));
            }
            for (pin, srcs) in sources {
                for (src, domain) in srcs {
                    if domain != dest && seen.insert((pin.index(), src, dest)) {
                        cross.push(CrossDomainNet {
                            net: pin.index(),
                            from: domain,
                            to: dest,
                            consumer: id,
                        });
                    }
                }
            }
        }
        let effective_shards = if cross.is_empty() {
            domains.len().max(1)
        } else {
            1
        };
        PartitionReport {
            domains,
            cross_nets: cross,
            effective_shards,
        }
    }
}

/// One net observed to carry a value launched in one domain into a
/// sequential consumer of another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossDomainNet {
    /// Raw index of the consumer's input net.
    pub net: usize,
    /// Domain the value launches from.
    pub from: Domain,
    /// Domain of the consuming sequential cell.
    pub to: Domain,
    /// The consuming instance.
    pub consumer: InstanceId,
}

/// The result of [`DomainGraph::partition`].
#[derive(Clone, Debug)]
pub struct PartitionReport {
    /// Distinct launch domains with sequential-instance counts, in
    /// placement order.
    pub domains: Vec<(Domain, usize)>,
    /// Nets where domains touch (empty ⇒ the domains are independent).
    pub cross_nets: Vec<CrossDomainNet>,
    /// How many independent shards this netlist honestly supports: the
    /// domain count when the domains share no nets, otherwise 1.
    pub effective_shards: usize,
}

impl PartitionReport {
    /// A one-line human summary for `--shards` reporting.
    pub fn summary(&self) -> String {
        if self.cross_nets.is_empty() {
            format!(
                "{} independent domain(s); shardable as-is",
                self.domains.len().max(1)
            )
        } else {
            format!(
                "{} domain(s) coupled through {} cross-domain net(s); \
                 gate-level netlist runs as 1 effective shard",
                self.domains.len(),
                self.cross_nets.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use mtf_sim::{Logic, Simulator};

    #[test]
    fn single_domain_flops_partition_as_one_shard() {
        let mut sim = Simulator::new(0);
        let clk = sim.net("clk");
        let mut b = Builder::new(&mut sim);
        let d = b.input("d");
        let q1 = b.dff(clk, d, Logic::L);
        let _q2 = b.dff(clk, q1, Logic::L);
        let nl = b.finish();
        let mut ix = DomainIndex::new(&nl, &sim);
        ix.declare_input(clk);
        ix.declare_input(d);
        let report = ix.graph().partition();
        assert_eq!(report.domains.len(), 1);
        assert!(report.cross_nets.is_empty());
        assert_eq!(report.effective_shards, 1);
    }

    #[test]
    fn independent_domains_are_shardable() {
        let mut sim = Simulator::new(0);
        let clk_a = sim.net("clk_a");
        let clk_b = sim.net("clk_b");
        let mut b = Builder::new(&mut sim);
        let da = b.input("da");
        let db = b.input("db");
        let _qa = b.dff(clk_a, da, Logic::L);
        let _qb = b.dff(clk_b, db, Logic::L);
        let nl = b.finish();
        let mut ix = DomainIndex::new(&nl, &sim);
        for n in [clk_a, clk_b, da, db] {
            ix.declare_input(n);
        }
        let report = ix.graph().partition();
        assert_eq!(report.domains.len(), 2);
        assert!(report.cross_nets.is_empty());
        assert_eq!(report.effective_shards, 2);
    }

    #[test]
    fn a_crossing_collapses_to_one_effective_shard() {
        let mut sim = Simulator::new(0);
        let clk_a = sim.net("clk_a");
        let clk_b = sim.net("clk_b");
        let mut b = Builder::new(&mut sim);
        let d = b.input("d");
        let qa = b.dff(clk_a, d, Logic::L);
        let _qb = b.dff(clk_b, qa, Logic::L); // unsynchronized crossing
        let nl = b.finish();
        let mut ix = DomainIndex::new(&nl, &sim);
        for n in [clk_a, clk_b, d] {
            ix.declare_input(n);
        }
        let g = ix.graph();
        let report = g.partition();
        assert_eq!(report.domains.len(), 2);
        assert_eq!(report.cross_nets.len(), 1);
        assert_eq!(report.effective_shards, 1);
        assert_eq!(report.cross_nets[0].from, Domain::Clock(clk_a.index()));
        assert_eq!(report.cross_nets[0].to, Domain::Clock(clk_b.index()));
    }

    #[test]
    fn clock_root_walks_through_buffers() {
        let mut sim = Simulator::new(0);
        let clk = sim.net("clk");
        let mut b = Builder::new(&mut sim);
        let buffered = b.buf(clk);
        let d = b.input("d");
        let _q = b.dff(buffered, d, Logic::L);
        let nl = b.finish();
        let mut ix = DomainIndex::new(&nl, &sim);
        ix.declare_input(clk);
        ix.declare_input(d);
        let g = ix.graph();
        assert_eq!(g.clock_root(buffered), clk.index());
        assert_eq!(
            g.launch_domain(InstanceId::from_index(1)),
            Some(Domain::Clock(clk.index()))
        );
    }
}
