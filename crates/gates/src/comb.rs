//! Combinational gate components.

use mtf_sim::{Component, Ctx, DriverId, Logic, NetId};

use crate::netlist::DelayTable;

/// The boolean function a [`CombGate`] computes, with Kleene (`X`-aware)
/// semantics and pending-`Z` propagation (see [`GateFunc::apply`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GateFunc {
    /// Identity (first input).
    Buf,
    /// Negation (first input).
    Inv,
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// Inputs `[sel, a, b]`: `a` when `sel` low, `b` when high, and if
    /// `sel` is unknown, `X` unless `a == b`.
    Mux2,
    /// AND of the first input with the complement of the second:
    /// `a AND NOT b`, the "stop gate" used by the relay-station
    /// controllers.
    AndNot,
    /// OR of the first input with the complement of the second:
    /// `a OR NOT b`.
    OrNot,
}

impl GateFunc {
    /// Applies the function to the input levels.
    ///
    /// `Z` means *not driven yet* (power-up, or a released tri-state bus),
    /// which is different from `X` (*conflict or metastable*): if the
    /// output is not forced by dominating definite inputs (a low on an AND,
    /// a high on an OR, …) and some input is still `Z`, the result is `Z` —
    /// the gate's output is simply still pending. Without this distinction,
    /// the start-up `X` transients of undriven control cones would latch
    /// into SR latches and C-elements and poison them permanently.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not suit the function (e.g. XOR
    /// with three inputs).
    pub fn apply(self, inputs: &[Logic]) -> Logic {
        let r = self.apply_kleene(inputs);
        if r == Logic::X && inputs.contains(&Logic::Z) {
            Logic::Z
        } else {
            r
        }
    }

    /// The plain Kleene evaluation with `Z` read as `X`.
    fn apply_kleene(self, inputs: &[Logic]) -> Logic {
        // Normalise Z to X: a floating gate input reads as unknown.
        let norm = |v: Logic| if v == Logic::Z { Logic::X } else { v };
        match self {
            GateFunc::Buf => {
                assert_eq!(inputs.len(), 1, "BUF takes one input");
                norm(inputs[0])
            }
            GateFunc::Inv => {
                assert_eq!(inputs.len(), 1, "INV takes one input");
                !norm(inputs[0])
            }
            GateFunc::And => inputs.iter().map(|&v| norm(v)).fold(Logic::H, Logic::and),
            GateFunc::Or => inputs.iter().map(|&v| norm(v)).fold(Logic::L, Logic::or),
            GateFunc::Nand => !GateFunc::And.apply_kleene(inputs),
            GateFunc::Nor => !GateFunc::Or.apply_kleene(inputs),
            GateFunc::Xor => {
                assert_eq!(inputs.len(), 2, "XOR takes two inputs");
                norm(inputs[0]).xor(norm(inputs[1]))
            }
            GateFunc::Mux2 => {
                assert_eq!(inputs.len(), 3, "MUX2 takes [sel, a, b]");
                let (sel, a, b) = (norm(inputs[0]), norm(inputs[1]), norm(inputs[2]));
                match sel {
                    Logic::L => a,
                    Logic::H => b,
                    _ => {
                        if a == b && a.is_definite() {
                            a
                        } else {
                            Logic::X
                        }
                    }
                }
            }
            GateFunc::AndNot => {
                assert_eq!(inputs.len(), 2, "ANDNOT takes two inputs");
                norm(inputs[0]).and(!norm(inputs[1]))
            }
            GateFunc::OrNot => {
                assert_eq!(inputs.len(), 2, "ORNOT takes two inputs");
                norm(inputs[0]).or(!norm(inputs[1]))
            }
        }
    }
}

/// A combinational gate: recomputes its function whenever an input net
/// changes and schedules the result on its output driver after the
/// instance's current [`DelayTable`] entry.
pub struct CombGate {
    name: String,
    func: GateFunc,
    inputs: Vec<NetId>,
    out: DriverId,
    delays: DelayTable,
    inst: usize,
}

impl std::fmt::Debug for CombGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CombGate")
            .field("name", &self.name)
            .field("func", &self.func)
            .finish()
    }
}

impl CombGate {
    /// Creates the behavioural half of a combinational instance. Normally
    /// called through [`Builder`](crate::Builder), which also records the
    /// structural half.
    pub fn new(
        name: impl Into<String>,
        func: GateFunc,
        inputs: Vec<NetId>,
        out: DriverId,
        delays: DelayTable,
        inst: usize,
    ) -> Self {
        CombGate {
            name: name.into(),
            func,
            inputs,
            out,
            delays,
            inst,
        }
    }
}

impl Component for CombGate {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        // Gate evaluation is the hottest code in the simulator; read the
        // inputs into a stack buffer so no allocation happens per eval.
        // (The builder's widest primitive cells stay well under the cap.)
        let v = if self.inputs.len() <= 8 {
            let mut vals = [Logic::Z; 8];
            for (v, &n) in vals.iter_mut().zip(&self.inputs) {
                *v = ctx.get(n);
            }
            self.func.apply(&vals[..self.inputs.len()])
        } else {
            let vals: Vec<Logic> = self.inputs.iter().map(|&n| ctx.get(n)).collect();
            self.func.apply(&vals)
        };
        let d = self.delays.borrow()[self.inst];
        ctx.drive(self.out, v, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn and_or_wide() {
        assert_eq!(GateFunc::And.apply(&[H, H, H]), H);
        assert_eq!(GateFunc::And.apply(&[H, L, H]), L);
        assert_eq!(GateFunc::Or.apply(&[L, L, H]), H);
        assert_eq!(GateFunc::Nor.apply(&[L, L]), H);
        assert_eq!(GateFunc::Nand.apply(&[H, H]), L);
    }

    #[test]
    fn x_propagation_is_kleene() {
        assert_eq!(GateFunc::And.apply(&[L, X]), L);
        assert_eq!(GateFunc::And.apply(&[H, X]), X);
        assert_eq!(GateFunc::Or.apply(&[H, X]), H);
        assert_eq!(GateFunc::Or.apply(&[L, X]), X);
    }

    #[test]
    fn z_propagates_as_pending_unless_dominated() {
        // Undetermined with a pending input: still pending.
        assert_eq!(GateFunc::Buf.apply(&[Z]), Z);
        assert_eq!(GateFunc::Inv.apply(&[Z]), Z);
        assert_eq!(GateFunc::And.apply(&[Z, H]), Z);
        assert_eq!(GateFunc::Or.apply(&[Z, L]), Z);
        assert_eq!(GateFunc::Nand.apply(&[Z, H]), Z);
        // Dominating definite inputs force the output regardless of Z.
        assert_eq!(GateFunc::And.apply(&[Z, L]), L);
        assert_eq!(GateFunc::Or.apply(&[Z, H]), H);
        assert_eq!(GateFunc::Nor.apply(&[Z, H]), L);
        assert_eq!(GateFunc::AndNot.apply(&[Z, H]), L);
        // A definite X (conflict/metastable) stays X.
        assert_eq!(GateFunc::Buf.apply(&[X]), X);
        assert_eq!(GateFunc::And.apply(&[X, H]), X);
    }

    #[test]
    fn mux_select() {
        assert_eq!(GateFunc::Mux2.apply(&[L, H, L]), H);
        assert_eq!(GateFunc::Mux2.apply(&[H, H, L]), L);
        assert_eq!(GateFunc::Mux2.apply(&[X, H, H]), H); // agreeing data
        assert_eq!(GateFunc::Mux2.apply(&[X, H, L]), X);
    }

    #[test]
    fn andnot_ornot() {
        assert_eq!(GateFunc::AndNot.apply(&[H, L]), H);
        assert_eq!(GateFunc::AndNot.apply(&[H, H]), L);
        assert_eq!(GateFunc::OrNot.apply(&[L, H]), L);
        assert_eq!(GateFunc::OrNot.apply(&[L, L]), H);
    }

    #[test]
    #[should_panic]
    fn xor_arity_checked() {
        let _ = GateFunc::Xor.apply(&[H, H, H]);
    }
}
