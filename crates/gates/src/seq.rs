//! Sequential single-bit cells: D flip-flop (with optional enable),
//! D latch, SR latch.

use mtf_sim::{Component, Ctx, DriverId, Logic, MetaModel, NetId, Time, Violation, ViolationKind};

use crate::netlist::DelayTable;

/// A positive-edge D flip-flop, optionally with a synchronous enable (the
/// paper's ETDFF — the token-passing registers of the FIFO cells).
///
/// Behaviour beyond the textbook truth table:
///
/// * **Setup/hold checking** — if the data (or enable) input changes within
///   `setup` before or `hold` after a sampling edge, a
///   [`ViolationKind::Setup`]/[`ViolationKind::Hold`] report is recorded.
///   The fmax measurement in `mtf-bench` relies on these reports.
/// * **Metastability** — if an input changes inside the [`MetaModel`]
///   window around the edge, the output goes `X`, a
///   [`ViolationKind::Metastability`] report is recorded, and after an
///   exponentially-distributed settling time the output resolves to a
///   *random* definite value. This is how the synchronizer chains built
///   from these flops exhibit the failures the paper's design guards
///   against.
pub struct Dff {
    name: String,
    clk: NetId,
    d: NetId,
    en: Option<NetId>,
    q: DriverId,
    state: Logic,
    prev_clk: Logic,
    last_edge: Option<Time>,
    last_captured: bool,
    meta: MetaModel,
    setup: Time,
    hold: Time,
    check_timing: bool,
    pending: Option<(Time, Logic)>,
    delays: DelayTable,
    inst: usize,
}

impl std::fmt::Debug for Dff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dff")
            .field("name", &self.name)
            .field("state", &self.state)
            .finish()
    }
}

/// Everything needed to instantiate a [`Dff`]; filled in by
/// [`Builder`](crate::Builder).
#[derive(Debug)]
pub struct DffConfig {
    /// Instance name.
    pub name: String,
    /// Clock net.
    pub clk: NetId,
    /// Data net.
    pub d: NetId,
    /// Optional synchronous enable net.
    pub en: Option<NetId>,
    /// Output driver.
    pub q: DriverId,
    /// Power-on state.
    pub init: Logic,
    /// Metastability model ([`MetaModel::ideal`] disables it).
    pub meta: MetaModel,
    /// Setup window for violation reports.
    pub setup: Time,
    /// Hold window for violation reports.
    pub hold: Time,
    /// Whether to record setup/hold reports at all.
    pub check_timing: bool,
    /// Shared delay table.
    pub delays: DelayTable,
    /// This instance's index in the delay table.
    pub inst: usize,
}

impl Dff {
    /// Creates the behavioural half of a flip-flop instance.
    pub fn new(cfg: DffConfig) -> Self {
        Dff {
            name: cfg.name,
            clk: cfg.clk,
            d: cfg.d,
            en: cfg.en,
            q: cfg.q,
            state: cfg.init,
            prev_clk: Logic::X,
            last_edge: None,
            last_captured: false,
            meta: cfg.meta,
            setup: cfg.setup,
            hold: cfg.hold,
            check_timing: cfg.check_timing,
            pending: None,
            delays: cfg.delays,
            inst: cfg.inst,
        }
    }

    fn cq(&self) -> Time {
        self.delays.borrow()[self.inst]
    }
}

impl Component for Dff {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();

        // Resolve a pending metastable settle first.
        if let Some((at, v)) = self.pending {
            if now >= at {
                self.pending = None;
                self.state = v;
                ctx.drive(self.q, v, Time::ZERO);
            }
        }

        let clk = ctx.get(self.clk);
        let rising = self.prev_clk == Logic::L && clk == Logic::H;
        let first_eval = self.prev_clk == Logic::X && self.last_edge.is_none();
        self.prev_clk = clk;

        if first_eval {
            // Establish the power-on output immediately: the state has
            // been on the output since t = 0 (see CElement::eval for why a
            // delayed initial drive is hazardous).
            ctx.drive(self.q, self.state, Time::ZERO);
        }

        if rising {
            self.last_edge = Some(now);
            let enabled = match self.en {
                None => Logic::H,
                Some(en) => ctx.get(en),
            };
            // Did any sampled input move inside the metastability window?
            let mut vulnerable = self.meta.is_vulnerable(ctx.last_change(self.d), now)
                && ctx.last_change(self.d) != Time::ZERO;
            if let Some(en) = self.en {
                vulnerable |= self.meta.is_vulnerable(ctx.last_change(en), now)
                    && ctx.last_change(en) != Time::ZERO;
            }
            if vulnerable {
                ctx.report(Violation {
                    kind: ViolationKind::Metastability,
                    time: now,
                    source: self.name.clone(),
                    message: "input moved inside the metastability window".into(),
                });
                let settle = self.meta.draw_settle(ctx.rng());
                let resolved = self.meta.draw_resolution(ctx.rng());
                self.state = Logic::X;
                self.last_captured = true;
                ctx.drive(self.q, Logic::X, self.cq());
                self.pending = Some((now + self.cq() + settle, resolved));
                ctx.wake_in(self.cq() + settle);
                return;
            }
            // Plain setup report (data changed close to, but outside, the
            // metastability window).
            if self.check_timing {
                let check_setup = |net: NetId, ctx: &mut Ctx<'_>, name: &str| {
                    let ch = ctx.last_change(net);
                    if ch < now && now - ch < self.setup {
                        ctx.report(Violation {
                            kind: ViolationKind::Setup,
                            time: now,
                            source: name.to_string(),
                            message: format!(
                                "data changed {} before edge (setup {})",
                                now - ch,
                                self.setup
                            ),
                        });
                    }
                };
                check_setup(self.d, ctx, &self.name);
                if let Some(en) = self.en {
                    check_setup(en, ctx, &self.name);
                }
            }
            match enabled {
                Logic::H => {
                    self.last_captured = true;
                    let d = ctx.get(self.d);
                    self.state = if d == Logic::Z { Logic::X } else { d };
                    self.pending = None;
                    ctx.drive(self.q, self.state, self.cq());
                    // A synchronizer stage that captures a still-metastable
                    // (X) input goes metastable itself and resolves per its
                    // own settling model — this is what makes deeper
                    // synchronizer chains exponentially safer (E8).
                    if self.state == Logic::X && self.meta.window > mtf_sim::Time::ZERO {
                        let settle = self.meta.draw_settle(ctx.rng());
                        let resolved = self.meta.draw_resolution(ctx.rng());
                        self.pending = Some((now + self.cq() + settle, resolved));
                        ctx.wake_in(self.cq() + settle);
                    }
                }
                Logic::L => {
                    self.last_captured = false;
                }
                _ => {
                    self.last_captured = true;
                    self.state = Logic::X;
                    self.pending = None;
                    ctx.drive(self.q, Logic::X, self.cq());
                }
            }
            return;
        }

        // Hold check: a sampled input moved just after a capturing edge.
        if self.check_timing && self.last_captured {
            if let Some(edge) = self.last_edge {
                let moved_now = ctx.last_change(self.d) == now
                    || self.en.is_some_and(|en| ctx.last_change(en) == now);
                if moved_now && now > edge && now - edge < self.hold {
                    ctx.report(Violation {
                        kind: ViolationKind::Hold,
                        time: now,
                        source: self.name.clone(),
                        message: format!(
                            "data changed {} after edge (hold {})",
                            now - edge,
                            self.hold
                        ),
                    });
                }
            }
        }
    }
}

/// A level-sensitive D latch: transparent while `en` is high, opaque while
/// low.
pub struct DLatch {
    name: String,
    en: NetId,
    d: NetId,
    q: DriverId,
    state: Logic,
    started: bool,
    delays: DelayTable,
    inst: usize,
}

impl std::fmt::Debug for DLatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DLatch").field("name", &self.name).finish()
    }
}

impl DLatch {
    /// Creates the behavioural half of a D-latch instance.
    pub fn new(
        name: impl Into<String>,
        en: NetId,
        d: NetId,
        q: DriverId,
        init: Logic,
        delays: DelayTable,
        inst: usize,
    ) -> Self {
        DLatch {
            name: name.into(),
            en,
            d,
            q,
            state: init,
            started: false,
            delays,
            inst,
        }
    }
}

impl Component for DLatch {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if !self.started {
            self.started = true;
            ctx.drive(self.q, self.state, Time::ZERO);
            return; // see CElement::eval — do not supersede the init drive
        }
        let en = ctx.get(self.en);
        let d = ctx.get(self.d);
        let next = match en {
            // Transparent: follow the data, including a still-pending Z.
            Logic::H => d,
            // Z enable = not driven yet = opaque (see SrLatch::next_state
            // for the power-up rationale).
            Logic::L | Logic::Z => self.state,
            // Unknown enable: only safe if the data equals the held state.
            _ => {
                if d == self.state && d.is_definite() {
                    self.state
                } else {
                    Logic::X
                }
            }
        };
        self.state = next;
        let delay = self.delays.borrow()[self.inst];
        ctx.drive(self.q, next, delay);
    }
}

/// A set/reset latch (the mixed-clock cell's data-validity controller).
///
/// `s` high sets, `r` high resets, both low holds. The simultaneous case
/// is configurable: a plain latch drives `X` (invalid), while a
/// **set-dominant** latch stays set — which is what the FIFO cells need,
/// because the get side's synchronization staleness can fire a harmless
/// spurious read pulse into a cell whose put is still in progress; the
/// put must win or the item is lost.
pub struct SrLatch {
    name: String,
    s: NetId,
    r: NetId,
    q: DriverId,
    qn: Option<DriverId>,
    state: Logic,
    set_dominant: bool,
    started: bool,
    delays: DelayTable,
    inst: usize,
}

impl std::fmt::Debug for SrLatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SrLatch")
            .field("name", &self.name)
            .field("state", &self.state)
            .finish()
    }
}

impl SrLatch {
    /// Creates the behavioural half of an SR-latch instance. `qn`, when
    /// present, always carries the complement of `q`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        s: NetId,
        r: NetId,
        q: DriverId,
        qn: Option<DriverId>,
        init: Logic,
        set_dominant: bool,
        delays: DelayTable,
        inst: usize,
    ) -> Self {
        SrLatch {
            name: name.into(),
            s,
            r,
            q,
            qn,
            state: init,
            set_dominant,
            started: false,
            delays,
            inst,
        }
    }

    fn next_state(state: Logic, s: Logic, r: Logic, set_dominant: bool) -> Logic {
        use Logic::*;
        // An undriven (Z) set/reset input is *inactive*, not unknown: at
        // power-up the driving gates have not produced a value yet, and a
        // state-holding cell must not be poisoned by that. (A definite X —
        // a real conflict or metastable driver — stays pessimistic.)
        let s = if s == Z { L } else { s };
        let r = if r == Z { L } else { r };
        match (s, r) {
            (H, L) => H,
            (L, H) => L,
            (L, L) => state,
            (H, H) => {
                if set_dominant {
                    H
                } else {
                    X
                }
            }
            // An unknown control is only harmless if it cannot change the
            // state.
            (X, L) => {
                if state == H {
                    H
                } else {
                    X
                }
            }
            (L, X) => {
                if state == L {
                    L
                } else {
                    X
                }
            }
            _ => X,
        }
    }
}

impl Component for SrLatch {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if !self.started {
            self.started = true;
            ctx.drive(self.q, self.state, Time::ZERO);
            if let Some(qn) = self.qn {
                ctx.drive(qn, !self.state, Time::ZERO);
            }
            return; // see CElement::eval — do not supersede the init drive
        }
        let s = ctx.get(self.s);
        let r = ctx.get(self.r);
        self.state = Self::next_state(self.state, s, r, self.set_dominant);
        let delay = self.delays.borrow()[self.inst];
        ctx.drive(self.q, self.state, delay);
        if let Some(qn) = self.qn {
            ctx.drive(qn, !self.state, delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn sr_truth_table() {
        assert_eq!(SrLatch::next_state(L, H, L, false), H);
        assert_eq!(SrLatch::next_state(H, L, H, false), L);
        assert_eq!(SrLatch::next_state(H, L, L, false), H);
        assert_eq!(SrLatch::next_state(L, L, L, false), L);
        assert_eq!(SrLatch::next_state(L, H, H, false), X);
    }

    #[test]
    fn set_dominance_resolves_the_overlap() {
        assert_eq!(SrLatch::next_state(L, H, H, true), H);
        assert_eq!(SrLatch::next_state(H, H, H, true), H);
        // The plain cases are unchanged.
        assert_eq!(SrLatch::next_state(H, L, H, true), L);
        assert_eq!(SrLatch::next_state(L, H, L, true), H);
    }

    #[test]
    fn sr_unknowns_are_pessimistic_only_when_they_matter() {
        // X on set while already set: harmless.
        assert_eq!(SrLatch::next_state(H, X, L, false), H);
        // X on set while reset-state: might set -> X.
        assert_eq!(SrLatch::next_state(L, X, L, false), X);
        // X on reset while already reset: harmless.
        assert_eq!(SrLatch::next_state(L, L, X, false), L);
        assert_eq!(SrLatch::next_state(H, L, X, false), X);
    }
}
