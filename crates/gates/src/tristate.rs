//! Tri-state drivers.

use mtf_sim::{Component, Ctx, DriverId, Logic, NetId};

use crate::netlist::DelayTable;

/// A single-bit tri-state driver: drives `d` onto the bus while `en` is
/// high, contributes `Z` while low. An unknown enable drives `X`
/// (pessimistic — a floating enable may be fighting other drivers).
///
/// The FIFO cells of the paper use these to broadcast dequeued data on the
/// shared `get_data` bus: exactly one cell (the get-token holder) enables
/// its drivers in any cycle.
pub struct TriBuf {
    name: String,
    en: NetId,
    d: NetId,
    out: DriverId,
    delays: DelayTable,
    inst: usize,
}

impl std::fmt::Debug for TriBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TriBuf").field("name", &self.name).finish()
    }
}

impl TriBuf {
    /// Creates the behavioural half of a tri-state instance (normally via
    /// [`Builder::tribuf_onto`](crate::Builder::tribuf_onto)).
    pub fn new(
        name: impl Into<String>,
        en: NetId,
        d: NetId,
        out: DriverId,
        delays: DelayTable,
        inst: usize,
    ) -> Self {
        TriBuf {
            name: name.into(),
            en,
            d,
            out,
            delays,
            inst,
        }
    }

    pub(crate) fn output_value(en: Logic, d: Logic) -> Logic {
        match en {
            // Enabled with still-undriven data: the bus is pending, not in
            // conflict (see the Z-vs-X discussion on
            // [`GateFunc::apply`](crate::GateFunc::apply)).
            Logic::H => d,
            Logic::L => Logic::Z,
            Logic::Z => Logic::Z,
            Logic::X => Logic::X,
        }
    }
}

impl Component for TriBuf {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let v = Self::output_value(ctx.get(self.en), ctx.get(self.d));
        let delay = self.delays.borrow()[self.inst];
        ctx.drive(self.out, v, delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn truth_table() {
        assert_eq!(TriBuf::output_value(H, H), H);
        assert_eq!(TriBuf::output_value(H, L), L);
        assert_eq!(TriBuf::output_value(H, X), X);
        assert_eq!(TriBuf::output_value(H, Z), Z);
        assert_eq!(TriBuf::output_value(L, H), Z);
        assert_eq!(TriBuf::output_value(L, X), Z);
        assert_eq!(TriBuf::output_value(X, H), X);
        assert_eq!(TriBuf::output_value(Z, L), Z);
    }
}
