//! The compiled-region execution engine.
//!
//! [`CompiledEngine`] is a single [`Component`] that replaces the per-cell
//! components of an acyclic synchronous region (selected and levelized by
//! [`crate::compile`]). It keeps a flat value vector over the region's
//! nets, re-evaluates dirty cells in rank order whenever a *boundary* net
//! (one the region reads but does not produce) changes, and lands its own
//! scheduled output transitions from a private agenda instead of the
//! simulator's event queue.
//!
//! The engine is written to be *observationally identical* to the
//! per-cell components it replaces:
//!
//! * every output transition lands at the exact instant the event-driven
//!   cell would have scheduled it (delays are read from the shared
//!   [`DelayTable`] at evaluation time, so timing annotation still works);
//! * re-evaluating a cell always overwrites its pending transition, which
//!   reproduces the kernel's inertial drive-cancellation semantics;
//! * flip-flop captures, setup/hold checks and their violation messages
//!   replicate [`crate::Dff`] / [`crate::RegisterWord`] literally;
//! * internal nets are read from the engine's own slots and boundary nets
//!   through watched [`Ctx::get`] calls, so the delta-race sanitizer sees
//!   no reads it would not have seen from the original components.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mtf_sim::{Component, Ctx, DriverId, Logic, LogicVec, NetId, Time, Violation, ViolationKind};

use crate::comb::GateFunc;
use crate::netlist::DelayTable;

/// A compiled combinational gate: rank-ordered straight-line evaluation
/// over value slots.
pub(crate) struct CombNode {
    pub(crate) func: GateFunc,
    /// Input slots, in pin order (max 8, matching [`crate::CombGate`]).
    pub(crate) inputs: Vec<u32>,
    pub(crate) out_slot: u32,
    pub(crate) driver: DriverId,
    /// Index into the shared delay table.
    pub(crate) inst: usize,
    pub(crate) pending: Option<(Time, Logic)>,
}

/// A compiled single-bit edge-triggered flop (DFF or ETDFF with an ideal
/// metastability window — cells that consult the RNG are never compiled).
pub(crate) struct BitFlop {
    pub(crate) name: String,
    pub(crate) clk_slot: u32,
    pub(crate) d_slot: u32,
    pub(crate) d_net: NetId,
    /// Synchronous enable: (slot, net).
    pub(crate) en: Option<(u32, NetId)>,
    pub(crate) q_driver: DriverId,
    pub(crate) q_slot: u32,
    pub(crate) inst: usize,
    pub(crate) setup: Time,
    pub(crate) hold: Time,
    pub(crate) check_timing: bool,
    pub(crate) state: Logic,
    pub(crate) prev_clk: Logic,
    pub(crate) last_edge: Option<Time>,
    pub(crate) last_captured: bool,
    pub(crate) pending: Option<(Time, Logic)>,
}

/// A compiled word register ([`crate::RegisterWord`] semantics).
pub(crate) struct WordFlop {
    pub(crate) name: String,
    pub(crate) clk_slot: u32,
    /// Synchronous enable slot (no setup check on the enable — the word
    /// register only checks its data pins, matching `RegisterWord`).
    pub(crate) en: Option<u32>,
    /// Data pins: (slot, net), LSB first.
    pub(crate) d: Vec<(u32, NetId)>,
    /// Output pins: (driver, slot), LSB first.
    pub(crate) q: Vec<(DriverId, u32)>,
    pub(crate) inst: usize,
    pub(crate) setup: Time,
    pub(crate) check_timing: bool,
    pub(crate) state: LogicVec,
    pub(crate) prev_clk: Logic,
    pub(crate) initialised: bool,
    pub(crate) pending: Option<(Time, Vec<Logic>)>,
}

/// A compiled sequential cell, stored in elaboration order so multi-flop
/// evaluation within an instant matches the event kernel's watcher order.
pub(crate) enum Flop {
    Bit(BitFlop),
    Word(WordFlop),
}

/// One component standing in for a whole compiled region.
pub struct CompiledEngine {
    name: String,
    /// slot index -> net (slots cover every net the region touches).
    slots: Vec<NetId>,
    /// Cached resolved value per slot.
    values: Vec<Logic>,
    /// Slots of nets the region reads but does not drive; rescanned (and
    /// diffed) on every wake. These are exactly the nets the engine
    /// watches.
    boundary: Vec<u32>,
    /// slot -> dependent node refs (`r < comb.len()` is a comb index,
    /// otherwise `r - comb.len()` is a flop index).
    fanout: Vec<Vec<u32>>,
    /// Combinational nodes in topological (rank) order.
    comb: Vec<CombNode>,
    comb_dirty: Vec<bool>,
    /// Sequential nodes in elaboration order.
    flops: Vec<Flop>,
    flop_dirty: Vec<bool>,
    delays: DelayTable,
    /// Pending output landings: (time, node ref), lazily deleted.
    agenda: BinaryHeap<Reverse<(Time, u32)>>,
    established: bool,
}

impl std::fmt::Debug for CompiledEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledEngine")
            .field("name", &self.name)
            .field("combs", &self.comb.len())
            .field("flops", &self.flops.len())
            .field("boundary", &self.boundary.len())
            .finish()
    }
}

impl CompiledEngine {
    /// Assembles an engine from the tables built by [`crate::compile`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: String,
        slots: Vec<NetId>,
        values: Vec<Logic>,
        boundary: Vec<u32>,
        fanout: Vec<Vec<u32>>,
        comb: Vec<CombNode>,
        flops: Vec<Flop>,
        delays: DelayTable,
    ) -> Self {
        let comb_dirty = vec![false; comb.len()];
        let flop_dirty = vec![false; flops.len()];
        CompiledEngine {
            name,
            slots,
            values,
            boundary,
            fanout,
            comb,
            comb_dirty,
            flops,
            flop_dirty,
            delays,
            agenda: BinaryHeap::new(),
            established: false,
        }
    }

    /// Nets the engine must be registered as watching.
    pub(crate) fn boundary_nets(&self) -> Vec<NetId> {
        self.boundary
            .iter()
            .map(|&s| self.slots[s as usize])
            .collect()
    }

    fn mark_fanout(
        fanout: &[Vec<u32>],
        ncomb: usize,
        comb_dirty: &mut [bool],
        flop_dirty: &mut [bool],
        slot: u32,
    ) {
        for &r in &fanout[slot as usize] {
            let r = r as usize;
            if r < ncomb {
                comb_dirty[r] = true;
            } else {
                flop_dirty[r - ncomb] = true;
            }
        }
    }

    /// Lands a due pending transition. Equal-value commits are skipped at
    /// the driver (exactly like a drive event landing on an unchanged
    /// contribution), so toggles and waveform records match event mode.
    fn commit(&mut self, node: u32, t: Time, ctx: &mut Ctx<'_>) {
        let ncomb = self.comb.len() as u32;
        if node < ncomb {
            let i = node as usize;
            let Some((at, v)) = self.comb[i].pending else {
                return;
            };
            if at != t {
                return; // superseded entry; the live one is queued too
            }
            self.comb[i].pending = None;
            let slot = self.comb[i].out_slot;
            ctx.commit_drive(self.comb[i].driver, v);
            if self.values[slot as usize] != v {
                self.values[slot as usize] = v;
                Self::mark_fanout(
                    &self.fanout,
                    ncomb as usize,
                    &mut self.comb_dirty,
                    &mut self.flop_dirty,
                    slot,
                );
            }
            return;
        }
        match &mut self.flops[(node - ncomb) as usize] {
            Flop::Bit(f) => {
                let Some((at, v)) = f.pending else { return };
                if at != t {
                    return;
                }
                f.pending = None;
                let slot = f.q_slot;
                ctx.commit_drive(f.q_driver, v);
                if self.values[slot as usize] != v {
                    self.values[slot as usize] = v;
                    Self::mark_fanout(
                        &self.fanout,
                        ncomb as usize,
                        &mut self.comb_dirty,
                        &mut self.flop_dirty,
                        slot,
                    );
                }
            }
            Flop::Word(f) => {
                let due = matches!(&f.pending, Some((at, _)) if *at == t);
                if !due {
                    return;
                }
                let Some((_, bits)) = f.pending.take() else {
                    return;
                };
                for (k, &(drv, slot)) in f.q.iter().enumerate() {
                    let v = bits[k];
                    ctx.commit_drive(drv, v);
                    if self.values[slot as usize] != v {
                        self.values[slot as usize] = v;
                        Self::mark_fanout(
                            &self.fanout,
                            ncomb as usize,
                            &mut self.comb_dirty,
                            &mut self.flop_dirty,
                            slot,
                        );
                    }
                }
            }
        }
    }

    fn eval_comb(&mut self, i: usize, now: Time) {
        let (v, at) = {
            let node = &self.comb[i];
            let mut buf = [Logic::Z; 8];
            for (k, &s) in node.inputs.iter().enumerate() {
                buf[k] = self.values[s as usize];
            }
            let v = node.func.apply(&buf[..node.inputs.len()]);
            (v, now + self.delays.borrow()[node.inst])
        };
        // Always replace the pending transition, even on an equal value:
        // the event-driven gate re-drives on every evaluation and the new
        // drive cancels the old one (inertial behaviour).
        self.comb[i].pending = Some((at, v));
        self.agenda.push(Reverse((at, i as u32)));
    }

    fn eval_flop(&mut self, j: usize, now: Time, ctx: &mut Ctx<'_>) {
        let ncomb = self.comb.len() as u32;
        let node_ref = ncomb + j as u32;
        let cq = {
            let inst = match &self.flops[j] {
                Flop::Bit(f) => f.inst,
                Flop::Word(f) => f.inst,
            };
            self.delays.borrow()[inst]
        };
        match &mut self.flops[j] {
            Flop::Bit(f) => {
                // Mirrors `Dff::eval` with an ideal metastability window
                // (the settle / vulnerable branches can never be taken).
                let clk = self.values[f.clk_slot as usize];
                let rising = f.prev_clk == Logic::L && clk == Logic::H;
                let first_eval = f.prev_clk == Logic::X && f.last_edge.is_none();
                f.prev_clk = clk;

                if first_eval {
                    f.pending = Some((now, f.state));
                    self.agenda.push(Reverse((now, node_ref)));
                }

                if rising {
                    f.last_edge = Some(now);
                    let enabled = match f.en {
                        None => Logic::H,
                        Some((s, _)) => self.values[s as usize],
                    };
                    if f.check_timing {
                        let mut nets = [Some(f.d_net), f.en.map(|(_, n)| n)];
                        for net in nets.iter_mut().flatten() {
                            let ch = ctx.last_change(*net);
                            if ch < now && now - ch < f.setup {
                                ctx.report(Violation {
                                    kind: ViolationKind::Setup,
                                    time: now,
                                    source: f.name.clone(),
                                    message: format!(
                                        "data changed {} before edge (setup {})",
                                        now - ch,
                                        f.setup
                                    ),
                                });
                            }
                        }
                    }
                    match enabled {
                        Logic::H => {
                            f.last_captured = true;
                            let d = self.values[f.d_slot as usize];
                            f.state = if d == Logic::Z { Logic::X } else { d };
                            f.pending = Some((now + cq, f.state));
                            self.agenda.push(Reverse((now + cq, node_ref)));
                        }
                        Logic::L => {
                            f.last_captured = false;
                        }
                        _ => {
                            f.last_captured = true;
                            f.state = Logic::X;
                            f.pending = Some((now + cq, Logic::X));
                            self.agenda.push(Reverse((now + cq, node_ref)));
                        }
                    }
                    return;
                }

                if f.check_timing && f.last_captured {
                    if let Some(edge) = f.last_edge {
                        let moved_now = ctx.last_change(f.d_net) == now
                            || f.en.is_some_and(|(_, en)| ctx.last_change(en) == now);
                        if moved_now && now > edge && now - edge < f.hold {
                            ctx.report(Violation {
                                kind: ViolationKind::Hold,
                                time: now,
                                source: f.name.clone(),
                                message: format!(
                                    "data changed {} after edge (hold {})",
                                    now - edge,
                                    f.hold
                                ),
                            });
                        }
                    }
                }
            }
            Flop::Word(f) => {
                // Mirrors `RegisterWord::eval`.
                let clk = self.values[f.clk_slot as usize];
                let rising = f.prev_clk == Logic::L && clk == Logic::H;
                f.prev_clk = clk;

                if !f.initialised {
                    f.initialised = true;
                    let bits = (0..f.d.len()).map(|i| f.state.bit(i)).collect();
                    f.pending = Some((now + cq, bits));
                    self.agenda.push(Reverse((now + cq, node_ref)));
                }
                if !rising {
                    return;
                }
                let enabled = match f.en {
                    None => Logic::H,
                    Some(s) => self.values[s as usize],
                };
                match enabled {
                    Logic::L => {}
                    Logic::H => {
                        if f.check_timing {
                            for &(_, dn) in &f.d {
                                let ch = ctx.last_change(dn);
                                if ch < now && now - ch < f.setup {
                                    ctx.report(Violation {
                                        kind: ViolationKind::Setup,
                                        time: now,
                                        source: f.name.clone(),
                                        message: format!(
                                            "data bit changed {} before edge",
                                            now - ch
                                        ),
                                    });
                                    break;
                                }
                            }
                        }
                        for (i, &(slot, _)) in f.d.iter().enumerate() {
                            let v = self.values[slot as usize];
                            f.state.set_bit(i, if v == Logic::Z { Logic::X } else { v });
                        }
                        let bits = (0..f.d.len()).map(|i| f.state.bit(i)).collect();
                        f.pending = Some((now + cq, bits));
                        self.agenda.push(Reverse((now + cq, node_ref)));
                    }
                    _ => {
                        f.state = LogicVec::unknown(f.state.width());
                        let bits = (0..f.d.len()).map(|i| f.state.bit(i)).collect();
                        f.pending = Some((now + cq, bits));
                        self.agenda.push(Reverse((now + cq, node_ref)));
                    }
                }
            }
        }
    }
}

impl Component for CompiledEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut gate_evals: u64 = 0;

        if !self.established {
            // First wake: every node evaluates once, exactly as every
            // per-cell component receives an initial wake on registration.
            self.established = true;
            self.comb_dirty.iter_mut().for_each(|d| *d = true);
            self.flop_dirty.iter_mut().for_each(|d| *d = true);
        }

        // Boundary scan: pick up external net changes. Boundary nets are
        // never driven by compiled nodes, so one scan per wake suffices.
        // A net whose `last_change` is *now* is re-evaluated even when its
        // sampled value equals the stored one: a multi-driver net (e.g. a
        // tri-state bus) can transiently resolve away and back within one
        // instant, and the event kernel wakes watchers on each of those
        // changes — the re-evaluation inertially reschedules the watcher's
        // pending output, which is observable as a later landing.
        for bi in 0..self.boundary.len() {
            let s = self.boundary[bi];
            let net = self.slots[s as usize];
            let v = ctx.get(net);
            if v != self.values[s as usize] || ctx.last_change(net) == now {
                self.values[s as usize] = v;
                Self::mark_fanout(
                    &self.fanout,
                    self.comb.len(),
                    &mut self.comb_dirty,
                    &mut self.flop_dirty,
                    s,
                );
            }
        }

        loop {
            // Land transitions due at this instant (lazy agenda deletion:
            // entries whose pending was superseded are skipped).
            while let Some(&Reverse((t, node))) = self.agenda.peek() {
                if t > now {
                    break;
                }
                self.agenda.pop();
                self.commit(node, t, ctx);
            }
            for i in 0..self.comb.len() {
                if self.comb_dirty[i] {
                    self.comb_dirty[i] = false;
                    gate_evals += 1;
                    self.eval_comb(i, now);
                }
            }
            for j in 0..self.flops.len() {
                if self.flop_dirty[j] {
                    self.flop_dirty[j] = false;
                    gate_evals += 1;
                    self.eval_flop(j, now, ctx);
                }
            }
            let due_now = matches!(self.agenda.peek(), Some(&Reverse((t, _))) if t <= now);
            if !due_now {
                break;
            }
        }

        ctx.note_compiled_pass(gate_evals);
        if let Some(&Reverse((t, _))) = self.agenda.peek() {
            ctx.wake_in(t - now);
        }
    }
}
