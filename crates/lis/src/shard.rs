//! Domain-sharded parallel chain simulation.
//!
//! [`run_chain`](crate::run_chain) elaborates a whole [`ChainSpec`] into
//! one simulator. This module cuts the same chain at its relay-station
//! boundaries into contiguous **shards**, runs each shard on its own
//! worker thread with its own timing wheel (via
//! [`mtf_sim::run_sharded`]), and exchanges only the boundary stream
//! nets (`valid`/`data` forward, `stop` back) over bounded channels with
//! conservative null-message lookahead.
//!
//! ## Where the cuts go
//!
//! A chain is `segment₀ | design₀ | segment₁ | design₁ | …` — every
//! boundary design couples two relay segments through registered stream
//! signals only:
//!
//! * forward, the upstream segment's tail-station `out_valid`/`out_data`
//!   (driven `RS_CQ` after a rising edge of the upstream clock),
//! * backward, the design's `stop_out` (a flop output clocked by the
//!   upstream-domain clock — gate-level designs register it through the
//!   synchronizer chain, the behavioural `sync_rs` drives it `RS_CQ`
//!   after its clock edge).
//!
//! Because both directions are *registered* and every cut signal passes
//! through a 1 ps repeater before anything samples it, the cut is a
//! legal conservative boundary: a shard granted "no more events with
//! `t < G`" can safely simulate to `G` (see `mtf_sim::shard` for the
//! frontier-instant argument). The lookahead each shard extends is the
//! time to the *next clock-edge launch landing* on the cut — never less
//! than the remaining fraction of the upstream clock period plus the
//! register's clock-to-Q delay. The protocol's tolerance budget is much
//! larger (the paper's relay stations absorb `sync_stages` cycles of
//! stale `stop` information by construction), but the exact next-landing
//! bound is what makes the merge *byte-identical*, not merely correct.
//!
//! ## Determinism
//!
//! The sharded run must reproduce the single-shard run exactly, for any
//! shard count. Three mechanisms make that hold:
//!
//! * **Lockstep rounds** — each shard consumes exactly one message per
//!   in-link per round, so the sequence of targets, the batches of
//!   boundary events, and their `(time, link, pin)` application order
//!   are pure functions of the shard graph — wall-clock arrival order
//!   never matters.
//! * **Replicated clocks** — a shard that needs a remote domain's clock
//!   instantiates its own [`ClockGen`] copy (deterministic schedule,
//!   identical edges) instead of importing edges as events.
//! * **RNG-free elaboration** — gate-level boundary designs are built
//!   with [`MetaModel::ideal`] at *every* shard count (including one),
//!   so no shard ever consults its seeded RNG and per-shard RNG state
//!   cannot diverge from the single-simulator state.
//!
//! The merged observable state is captured as a [`ChainFingerprint`]:
//! per-net toggle counts (cut-mirror nets and replicated clocks
//! excluded; each real net counted exactly once across shards), timing
//! violations, the source/sink journals with timestamps, and the
//! per-boundary probe reports. `tests/sharded_determinism.rs` gates that
//! fingerprints at `--shards {2,4,8}` equal `--shards 1` byte for byte.

use std::collections::HashMap;
use std::ops::Range;

use mtf_async::{micropipeline, FourPhaseProducer, OpJournal};
use mtf_core::design::DesignRegistry;
use mtf_core::env::{PacketSink, PacketSource};
use mtf_core::{AsyncSyncRelayStation, FifoParams, MixedTimingDesign, RS_CQ};
use mtf_gates::{install_compiled, CellDelays};
use mtf_sim::{
    run_sharded, Backend, ClockGen, ClockSchedule, ExportSpec, ImportSpec, LinkDef, LinkLaunch,
    MetaModel, NetId, ShardIo, ShardPlan, ShardSpec, ShardStats, Simulator, Time,
};

use crate::chain::{
    chain_horizon, spawn_async_probe, spawn_stream_probe, BoundaryReport, ChainDrive, ChainReport,
    ChainRun, ChainSpec, DomainSpec, ProbeHandle,
};
use mtf_gates::Builder;

use crate::{build_stream_design_with_backend, connect, connect_bus, RelayChain};

/// Everything observable about a chain run, in canonical order, for
/// byte-for-byte comparison across shard counts.
///
/// Cut-mirror nets and replicated remote-domain clocks (all named with
/// an `xlink.` prefix) are excluded; every real net's toggle count
/// appears exactly once. Kernel event counts are deliberately *not*
/// part of the fingerprint — splitting one wheel into `N` changes how
/// many queue entries exist without changing a single signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainFingerprint {
    /// `(net name, toggle count)` for every non-`xlink.` net, sorted.
    pub toggles: Vec<(String, u64)>,
    /// Rendered timing violations, sorted.
    pub violations: Vec<String>,
    /// Source journal: `(value, time in ps)` per accepted item.
    pub sent: Vec<(u64, u64)>,
    /// Sink journal: `(value, time in ps)` per delivered item.
    pub delivered: Vec<(u64, u64)>,
    /// Per-boundary probe reports, in flow order.
    pub boundaries: Vec<BoundaryReport>,
}

impl ChainFingerprint {
    /// FNV-1a digest of the canonical rendering — a compact equality
    /// witness for JSON reports.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for (name, t) in &self.toggles {
            eat(name.as_bytes());
            eat(&t.to_le_bytes());
        }
        for v in &self.violations {
            eat(v.as_bytes());
        }
        for &(v, t) in self.sent.iter().chain(&self.delivered) {
            eat(&v.to_le_bytes());
            eat(&t.to_le_bytes());
        }
        for b in &self.boundaries {
            eat(b.design.as_bytes());
            for c in [
                b.put_accepts,
                b.put_stall_cycles,
                b.get_delivers,
                b.get_stall_cycles,
                b.max_occupancy,
            ] {
                eat(&c.to_le_bytes());
            }
        }
        h
    }
}

/// The outcome of [`run_chain_sharded`].
#[derive(Clone, Debug)]
pub struct ShardedChainRun {
    /// The merged run, identical in shape to [`run_chain`](crate::run_chain)'s.
    pub run: ChainRun,
    /// The canonical observable state (compare across shard counts).
    pub fingerprint: ChainFingerprint,
    /// Per-shard engine statistics, in shard order.
    pub shard_stats: Vec<ShardStats>,
    /// How many shards actually ran (`min(requested, segments)`).
    pub shards: usize,
}

/// Partitions a chain's segments into `requested` contiguous groups,
/// cutting only at boundary designs. Returns one segment range per
/// shard; the effective shard count is `min(requested.max(1), segments)`.
pub fn plan_chain_shards(spec: &ChainSpec, requested: usize) -> Vec<Range<usize>> {
    let s = spec.segments.len();
    let e = requested.max(1).min(s.max(1));
    (0..e)
        .map(|g| (g * s / e)..((g + 1) * s / e))
        .filter(|r| !r.is_empty())
        .collect()
}

/// What one shard reports back from its worker thread.
struct Outcome {
    toggles: Vec<(String, u64)>,
    violations: Vec<String>,
    /// `(value, time in ps)` pairs, present on the shard owning the source.
    sent: Option<Vec<(u64, u64)>>,
    /// Same, for the shard owning the sink.
    delivered: Option<Vec<(u64, u64)>>,
    /// `(flow-order key, report)` — async head is key 0, boundary `i` is `i + 1`.
    boundaries: Vec<(usize, BoundaryReport)>,
}

fn schedule_of(dom: DomainSpec) -> ClockSchedule {
    ClockSchedule {
        phase: dom.phase,
        period: dom.period,
    }
}

/// Creates (or returns) this shard's net for `dom`'s clock. The shard
/// containing the domain's first *global* segment owns the canonical
/// `chain.clk{i}` net; every other shard runs an `xlink.clk{i}` replica
/// with the identical schedule, excluded from the fingerprint.
fn clock_for(
    sim: &mut Simulator,
    clks: &mut HashMap<DomainSpec, NetId>,
    first_seg: &HashMap<DomainSpec, usize>,
    range: &Range<usize>,
    dom: DomainSpec,
) -> NetId {
    if let Some(&n) = clks.get(&dom) {
        return n;
    }
    let f = first_seg[&dom];
    let name = if range.contains(&f) {
        format!("chain.clk{f}")
    } else {
        format!("xlink.clk{f}")
    };
    let n = sim.net(name);
    ClockGen::builder(dom.period).phase(dom.phase).spawn(sim, n);
    clks.insert(dom, n);
    n
}

/// Elaborates shard `g` (segments `range`) of `spec` into `sim` and
/// describes its cut I/O. Mirrors `ChainBuilder::build`'s naming and
/// ordering exactly, except that gate-level boundary designs use
/// [`MetaModel::ideal`] (see module docs) and cut boundaries exchange
/// their stream nets through the shard engine instead of local wires.
#[allow(clippy::too_many_arguments)]
fn build_shard(
    sim: &mut Simulator,
    spec: &ChainSpec,
    drive: &ChainDrive,
    g: usize,
    range: Range<usize>,
    is_last: bool,
    backend: Backend,
) -> ShardPlan<Outcome> {
    let params: FifoParams = spec.params();
    let delays = CellDelays::hp06();
    let meta = MetaModel::ideal();

    let mut first_seg: HashMap<DomainSpec, usize> = HashMap::new();
    for (i, seg) in spec.segments.iter().enumerate() {
        first_seg.entry(seg.domain).or_insert(i);
    }
    let mut clks: HashMap<DomainSpec, NetId> = HashMap::new();

    // Clocks first, then segments — same order as ChainBuilder::build.
    let seg_clks: Vec<NetId> = range
        .clone()
        .map(|i| clock_for(sim, &mut clks, &first_seg, &range, spec.segments[i].domain))
        .collect();
    let chains: Vec<RelayChain> = range
        .clone()
        .map(|i| {
            let seg = &spec.segments[i];
            RelayChain::spawn(
                sim,
                &format!("chain.seg{i}"),
                seg_clks[i - range.start],
                spec.width,
                seg.stations,
                seg.wire_delay,
            )
        })
        .collect();

    let mut probes: Vec<(usize, ProbeHandle)> = Vec::new();
    let mut io = ShardIo::default();

    // Optional async head, only ever in shard 0.
    let mut async_in = None;
    if g == 0 {
        if let Some(stages) = spec.async_head {
            let mut b = Builder::with_delays(sim, delays, meta);
            let ars = micropipeline(&mut b, stages, spec.width);
            let asrs = AsyncSyncRelayStation::build(&mut b, params, seg_clks[0]);
            let head_netlist = b.finish();
            if backend == Backend::Compiled {
                install_compiled(sim, &head_netlist, "compiled.async_head");
            }
            connect(sim, ars.req_out, asrs.put_req);
            connect_bus(sim, &ars.data_out, &asrs.put_data);
            connect(sim, asrs.put_ack, ars.ack_out);
            connect(sim, asrs.valid_get, chains[0].port.in_valid);
            connect_bus(sim, &asrs.data_get, &chains[0].port.in_data);
            connect(sim, chains[0].port.stop_out, asrs.stop_in);
            probes.push((
                0,
                spawn_async_probe(
                    sim,
                    "async_sync_rs",
                    asrs.put_ack,
                    seg_clks[0],
                    asrs.valid_get,
                    asrs.stop_in,
                ),
            ));
            async_in = Some((ars.req_in, ars.ack_in, ars.data_in.clone()));
        }
    }

    // Incoming cut boundary: design `range.start - 1` lives here, fed by
    // mirror nets that replay the upstream tail station's outputs.
    if range.start > 0 {
        let bd = range.start - 1;
        let up_dom = spec.segments[bd].domain;
        let clk_put = clock_for(sim, &mut clks, &first_seg, &range, up_dom);
        let clk_get = seg_clks[0];
        let name = &spec.boundaries[bd];
        let design: &'static dyn MixedTimingDesign = DesignRegistry::get(name).expect("validated");
        let (ports, netlist) = build_stream_design_with_backend(
            sim, design, params, clk_put, clk_get, delays, meta, backend,
        )
        .expect("validated");

        let mv = sim.net(format!("xlink.b{bd}.valid"));
        let md = sim.bus(&format!("xlink.b{bd}.data"), spec.width);
        let mv_drv = sim.driver(mv);
        let md_drvs: Vec<_> = md.iter().map(|&n| sim.driver(n)).collect();
        connect(sim, mv, ports.valid_in.expect("stream put"));
        connect_bus(sim, &md, &ports.data_put);
        connect(
            sim,
            ports.valid_get.expect("stream get"),
            chains[0].port.in_valid,
        );
        connect_bus(sim, &ports.data_get, &chains[0].port.in_data);
        connect(
            sim,
            chains[0].port.stop_out,
            ports.stop_in.expect("stream get"),
        );
        probes.push((
            bd + 1,
            spawn_stream_probe(
                sim,
                name,
                clk_put,
                ports.valid_in.expect("stream put"),
                ports.stop_out.expect("stream put"),
                clk_get,
                ports.valid_get.expect("stream get"),
                ports.stop_in.expect("stream get"),
            ),
        ));

        // Backward cut: the design's stop_out, registered on the upstream
        // clock. Gate-level designs put a synchronizer flop there — read
        // its exact clock-to-Q from the netlist; the behavioural sync_rs
        // has no netlist driver and launches RS_CQ after its edge.
        let stop = ports.stop_out.expect("stream put");
        let stop_delay = netlist
            .drivers_of(stop)
            .next()
            .map(|(id, _)| netlist.delay_of(id))
            .unwrap_or(RS_CQ);
        io.exports.push(ExportSpec {
            link: 2 * (g - 1) + 1,
            nets: vec![stop],
            launches: vec![LinkLaunch {
                schedule: schedule_of(up_dom),
                delay: stop_delay,
            }],
        });
        let mut pins = vec![(mv_drv, mv)];
        pins.extend(md_drvs.iter().copied().zip(md.iter().copied()));
        io.imports.push(ImportSpec {
            link: 2 * (g - 1),
            pins,
        });
    }

    // Boundaries wholly inside this shard: the ordinary splice, with the
    // ideal metastability model.
    for bd in range.start..range.end.saturating_sub(1) {
        let li = bd - range.start;
        let name = &spec.boundaries[bd];
        let design: &'static dyn MixedTimingDesign = DesignRegistry::get(name).expect("validated");
        let (ports, _netlist) = build_stream_design_with_backend(
            sim,
            design,
            params,
            seg_clks[li],
            seg_clks[li + 1],
            delays,
            meta,
            backend,
        )
        .expect("validated");
        connect(
            sim,
            chains[li].port.out_valid,
            ports.valid_in.expect("stream put"),
        );
        connect_bus(sim, &chains[li].port.out_data, &ports.data_put);
        connect(
            sim,
            ports.stop_out.expect("stream put"),
            chains[li].port.stop_in,
        );
        connect(
            sim,
            ports.valid_get.expect("stream get"),
            chains[li + 1].port.in_valid,
        );
        connect_bus(sim, &ports.data_get, &chains[li + 1].port.in_data);
        connect(
            sim,
            chains[li + 1].port.stop_out,
            ports.stop_in.expect("stream get"),
        );
        probes.push((
            bd + 1,
            spawn_stream_probe(
                sim,
                name,
                seg_clks[li],
                ports.valid_in.expect("stream put"),
                ports.stop_out.expect("stream put"),
                seg_clks[li + 1],
                ports.valid_get.expect("stream get"),
                ports.stop_in.expect("stream get"),
            ),
        ));
    }

    // Outgoing cut: export the tail station's stream outputs, import the
    // next shard's stop through a mirror net.
    if !is_last {
        let bd = range.end - 1;
        let tail = chains.last().expect("non-empty").port.clone();
        let ms = sim.net(format!("xlink.b{bd}.stop"));
        let ms_drv = sim.driver(ms);
        connect(sim, ms, tail.stop_in);
        let mut nets = vec![tail.out_valid];
        nets.extend(tail.out_data.iter().copied());
        let dom = spec.segments[range.end - 1].domain;
        io.exports.push(ExportSpec {
            link: 2 * g,
            nets,
            launches: vec![LinkLaunch {
                schedule: schedule_of(dom),
                delay: RS_CQ,
            }],
        });
        io.imports.push(ImportSpec {
            link: 2 * g + 1,
            pins: vec![(ms_drv, ms)],
        });
    }

    // Source on the first shard, sink on the last — same spawns as
    // run_chain.
    let src_journal: Option<OpJournal> = if g == 0 {
        Some(match &async_in {
            Some((req, ack, data)) => FourPhaseProducer::spawn(
                sim,
                "chain.src",
                *req,
                *ack,
                data,
                drive.items.clone(),
                Time::from_ps(400),
                Time::ZERO,
            )
            .journal()
            .clone(),
            None => PacketSource::spawn(
                sim,
                "chain.src",
                seg_clks[0],
                chains[0].port.in_valid,
                &chains[0].port.in_data,
                chains[0].port.stop_out,
                drive.items.iter().map(|&v| Some(v)).collect(),
            ),
        })
    } else {
        None
    };
    let sink_journal: Option<OpJournal> = if is_last {
        let tail = &chains.last().expect("non-empty").port;
        Some(PacketSink::spawn(
            sim,
            "chain.sink",
            *seg_clks.last().expect("non-empty"),
            &tail.out_data,
            tail.out_valid,
            tail.stop_in,
            drive.stalls.clone(),
        ))
    } else {
        None
    };

    ShardPlan {
        io,
        finish: Box::new(move |sim| {
            let journal_pairs = |j: &OpJournal| -> Vec<(u64, u64)> {
                j.values()
                    .into_iter()
                    .zip(j.times())
                    .map(|(v, t)| (v, t.as_ps()))
                    .collect()
            };
            let mut toggles = Vec::with_capacity(sim.net_count());
            for i in 0..sim.net_count() {
                let net = NetId::from_index(i);
                let name = sim.net_name(net);
                if name.starts_with("xlink.") {
                    continue;
                }
                toggles.push((name.to_string(), sim.toggles(net)));
            }
            Outcome {
                toggles,
                violations: sim.violations().iter().map(|v| v.to_string()).collect(),
                sent: src_journal.as_ref().map(&journal_pairs),
                delivered: sink_journal.as_ref().map(&journal_pairs),
                boundaries: probes.iter().map(|(k, p)| (*k, p.report())).collect(),
            }
        }),
    }
}

/// Runs `spec` under `drive` split across up to `shards` worker threads,
/// one per contiguous segment group, and merges the results. The merged
/// [`ChainFingerprint`] is byte-identical for every shard count
/// (`run_chain_sharded(spec, drive, 1)` is the reference; the engine
/// runs a single unlinked shard on the plain `run_until` path in that
/// case, so kernel statistics also match a dedicated simulator).
///
/// Note this entry point is *not* [`run_chain`](crate::run_chain):
/// boundary designs are elaborated with [`MetaModel::ideal`] so that no
/// random metastability resolution occurs (see module docs) — the
/// single-threaded baseline to compare against is this function at
/// `shards == 1`.
pub fn run_chain_sharded(
    spec: &ChainSpec,
    drive: &ChainDrive,
    shards: usize,
) -> Result<ShardedChainRun, String> {
    run_chain_sharded_with_backend(spec, drive, shards, Backend::Event)
}

/// [`run_chain_sharded`] with an explicit execution [`Backend`] for the
/// gate-level netlists in every shard. Fingerprints are byte-identical
/// across backends *and* shard counts: the compiled engine lands every
/// transition at the instant the event-driven cell would have, and cut
/// launches are scheduled from the netlist, not from the backend.
pub fn run_chain_sharded_with_backend(
    spec: &ChainSpec,
    drive: &ChainDrive,
    shards: usize,
    backend: Backend,
) -> Result<ShardedChainRun, String> {
    spec.validate()?;
    let groups = plan_chain_shards(spec, shards);
    let e = groups.len();

    let mut links = Vec::new();
    for g in 1..e {
        // Forward link 2(g-1): upstream tail valid/data. Backward link
        // 2(g-1)+1: the boundary design's stop_out.
        links.push(LinkDef { from: g - 1, to: g });
        links.push(LinkDef { from: g, to: g - 1 });
    }

    let horizon = chain_horizon(spec, drive);
    let mut shard_specs = Vec::with_capacity(e);
    for (g, range) in groups.iter().enumerate() {
        let spec = spec.clone();
        let drive = drive.clone();
        let range = range.clone();
        let is_last = g == e - 1;
        shard_specs.push(ShardSpec {
            seed: drive.seed,
            setup: Box::new(move |sim| build_shard(sim, &spec, &drive, g, range, is_last, backend)),
        });
    }

    let results = run_sharded(shard_specs, &links, horizon).map_err(|err| format!("{err:?}"))?;

    let mut toggles = Vec::new();
    let mut violations = Vec::new();
    let mut sent_pairs = Vec::new();
    let mut delivered_pairs = Vec::new();
    let mut keyed_boundaries = Vec::new();
    let mut shard_stats = Vec::with_capacity(e);
    for (outcome, stats) in results {
        toggles.extend(outcome.toggles);
        violations.extend(outcome.violations);
        if let Some(s) = outcome.sent {
            sent_pairs = s;
        }
        if let Some(d) = outcome.delivered {
            delivered_pairs = d;
        }
        keyed_boundaries.extend(outcome.boundaries);
        shard_stats.push(stats);
    }
    toggles.sort();
    violations.sort();
    keyed_boundaries.sort_by_key(|&(k, _)| k);
    let boundaries: Vec<BoundaryReport> = keyed_boundaries.into_iter().map(|(_, b)| b).collect();

    let sent: Vec<u64> = sent_pairs.iter().map(|&(v, _)| v).collect();
    let delivered: Vec<u64> = delivered_pairs.iter().map(|&(v, _)| v).collect();
    let pairs = sent.len().min(delivered.len());
    let mut min_latency = Time::ZERO;
    let mut max_latency = Time::ZERO;
    for i in 0..pairs {
        let dt = Time::from_ps(delivered_pairs[i].1) - Time::from_ps(sent_pairs[i].1);
        if i == 0 || dt < min_latency {
            min_latency = dt;
        }
        if dt > max_latency {
            max_latency = dt;
        }
    }
    // Rebuild the sink journal so throughput uses the same estimator as
    // run_chain.
    let sink_journal = OpJournal::new();
    for &(v, t) in &delivered_pairs {
        sink_journal.push(Time::from_ps(t), v);
    }
    let throughput_hz = sink_journal.ops_per_second(delivered.len() / 4);

    let report = ChainReport {
        sent: sent.len() as u64,
        delivered: delivered.len() as u64,
        min_latency,
        max_latency,
        throughput_hz,
        boundaries: boundaries.clone(),
    };
    Ok(ShardedChainRun {
        run: ChainRun {
            sent,
            delivered,
            report,
        },
        fingerprint: ChainFingerprint {
            toggles,
            violations,
            sent: sent_pairs,
            delivered: delivered_pairs,
            boundaries,
        },
        shard_stats,
        shards: e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::verification_stalls;

    fn two_domain_spec() -> ChainSpec {
        ChainSpec::new(8, 4)
            .segment(9973, 0, 2)
            .boundary("mixed_clock_rs")
            .segment(10_007, 450, 2)
    }

    #[test]
    fn plan_covers_all_segments_contiguously() {
        let mut spec = ChainSpec::new(8, 4);
        for i in 0..5u64 {
            if i > 0 {
                spec = spec.boundary("mixed_clock_rs");
            }
            spec = spec.segment(10_000 + 13 * i, 0, 1);
        }
        for req in [0, 1, 2, 3, 5, 9] {
            let groups = plan_chain_shards(&spec, req);
            assert_eq!(groups.first().map(|r| r.start), Some(0));
            assert_eq!(groups.last().map(|r| r.end), Some(5));
            for w in groups.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap or overlap in {groups:?}");
            }
            assert!(groups.len() <= req.max(1));
        }
    }

    #[test]
    fn two_shards_reproduce_single_shard_fingerprint() {
        let spec = two_domain_spec();
        let drive = ChainDrive::clean(11, 12, 8);
        let one = run_chain_sharded(&spec, &drive, 1).expect("1 shard");
        let two = run_chain_sharded(&spec, &drive, 2).expect("2 shards");
        assert_eq!(two.shards, 2);
        assert_eq!(one.run.delivered, drive.items, "chain must be lossless");
        assert_eq!(one.fingerprint, two.fingerprint);
        assert_eq!(one.fingerprint.digest(), two.fingerprint.digest());
        let s = &two.shard_stats;
        assert!(
            s.iter().all(|st| st.rounds > 1),
            "cut shards must round-trip"
        );
        assert!(
            s.iter().any(|st| st.null_messages > 0),
            "lookahead must flow"
        );
    }

    #[test]
    fn stalled_sink_keeps_fingerprints_identical() {
        let spec = two_domain_spec();
        let drive = ChainDrive::with_stalls(7, 10, 8, verification_stalls());
        let one = run_chain_sharded(&spec, &drive, 1).expect("1 shard");
        let two = run_chain_sharded(&spec, &drive, 2).expect("2 shards");
        assert_eq!(one.fingerprint, two.fingerprint);
        assert_eq!(one.run.delivered, drive.items);
    }
}
