//! # mtf-lis — latency-insensitive protocol substrate
//!
//! Carloni et al. \[2\] make a synchronous design tolerant of long wires by
//! segmenting each wire and inserting **relay stations** — clocked 2-place
//! buffers with back-pressure (`stopIn`/`stopOut`). The paper under
//! reproduction generalises relay stations to mixed-timing interfaces
//! (`mtf-core`'s [`MixedClockRelayStation`](mtf_core::MixedClockRelayStation)
//! and [`AsyncSyncRelayStation`](mtf_core::AsyncSyncRelayStation)); this
//! crate provides the *single-clock* substrate they plug into:
//!
//! * [`SyncRelayStation`] — Carloni's relay station (paper Fig. 11b): a
//!   main register, an auxiliary register that absorbs the one packet in
//!   flight when the right neighbour stalls, and a registered `stop_out`.
//! * [`WireSegment`] — a pure transport delay standing in for one
//!   clock-cycle's worth of interconnect.
//! * [`RelayChain`] — `k` stations separated by wire segments, the unit of
//!   composition in Figs. 11a and 14.
//!
//! The relay stations here are behavioural components (the paper's
//! *baseline*, not its contribution — see DESIGN.md); the mixed-timing
//! stations they sandwich are full gate-level netlists from `mtf-core`.
//!
//! # Example: a pipelined long wire
//!
//! ```
//! use mtf_core::env::{PacketSink, PacketSource};
//! use mtf_lis::RelayChain;
//! use mtf_sim::{ClockGen, Simulator, Time};
//!
//! let mut sim = Simulator::new(1);
//! let clk = sim.net("clk");
//! ClockGen::spawn_simple(&mut sim, clk, Time::from_ns(10));
//! // Three relay stations with 3 ns of wire between consecutive hops.
//! let chain = RelayChain::spawn(&mut sim, "wire", clk, 8, 3, Time::from_ns(3));
//! let sent = PacketSource::spawn(&mut sim, "src", clk, chain.port.in_valid,
//!     &chain.port.in_data, chain.port.stop_out, (0..20).map(Some).collect());
//! let got = PacketSink::spawn(&mut sim, "sink", clk, &chain.port.out_data,
//!     chain.port.out_valid, chain.port.stop_in, vec![(5, 12)]); // a stall
//! sim.run_until(Time::from_us(2)).unwrap();
//! assert_eq!(got.values(), sent.values());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use mtf_core::{ClockInputs, DesignPorts, FifoParams, InterfaceSpec, MixedTimingDesign};
use mtf_gates::{install_compiled, Builder, CellDelays, Netlist};
use mtf_sim::{Backend, Component, Ctx, DriverId, MetaModel, NetId, Simulator, Time};

pub mod chain;
pub mod lookahead;
pub mod shard;

pub use chain::{
    chain_horizon, predict_latency, predict_throughput, run_chain, run_chain_sanitized,
    run_chain_sanitized_with_backend, run_chain_with_backend, verification_stalls, verify_chain,
    verify_chain_with_backend, AsyncPort, BoundaryReport, BuiltChain, ChainBuilder, ChainDrive,
    ChainReport, ChainRun, ChainSpec, ChainVerification, DomainSpec, LatencyEnvelope, SegmentSpec,
    ThroughputPrediction,
};
pub use lookahead::{
    audit_chain_lookahead, registered_launch_exact, CutAudit, HoldAudit, LookaheadAudit,
};
pub use shard::{
    plan_chain_shards, run_chain_sharded, run_chain_sharded_with_backend, ChainFingerprint,
    ShardedChainRun,
};
// The behavioural station itself now lives in `mtf-core` (so the design
// registry can name it); these re-exports keep the original paths alive.
pub use mtf_core::{RelayPort, SyncRelayStation};

/// A pure transport delay on a packet bundle — one segment of a long wire
/// after relay-station insertion (the delay should be below the receiving
/// station's clock period; that is the whole point of segmentation).
pub struct WireSegment {
    name: String,
    inputs: Vec<NetId>,
    outputs: Vec<DriverId>,
    delay: Time,
}

impl std::fmt::Debug for WireSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireSegment")
            .field("name", &self.name)
            .field("delay", &self.delay)
            .finish()
    }
}

impl WireSegment {
    /// Connects `from` nets to freshly created nets through `delay`;
    /// returns the downstream nets.
    pub fn spawn(sim: &mut Simulator, name: &str, from: &[NetId], delay: Time) -> Vec<NetId> {
        let outs: Vec<NetId> = (0..from.len())
            .map(|i| sim.net(format!("{name}[{i}]")))
            .collect();
        let drvs = outs.iter().map(|&n| sim.driver(n)).collect();
        let w = WireSegment {
            name: name.to_string(),
            inputs: from.to_vec(),
            outputs: drvs,
            delay,
        };
        sim.add_component(Box::new(w), from);
        outs
    }
}

impl Component for WireSegment {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        for (i, &n) in self.inputs.iter().enumerate() {
            let v = ctx.get(n);
            ctx.drive(self.outputs[i], v, self.delay);
        }
    }
}

/// A chain of `stations` relay stations in one clock domain, with
/// `wire_delay` of interconnect between consecutive stations (and none at
/// the endpoints — those belong to the neighbouring blocks). Packets enter
/// at [`RelayPort::in_valid`]/[`RelayPort::in_data`] and leave at
/// [`RelayPort::out_valid`]/[`RelayPort::out_data`]; back-pressure flows
/// the other way.
#[derive(Debug)]
pub struct RelayChain {
    /// The chain's composite external port.
    pub port: RelayPort,
    /// Number of stations.
    pub stations: usize,
}

impl RelayChain {
    /// Builds the chain. `stations` must be at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `stations` is zero.
    pub fn spawn(
        sim: &mut Simulator,
        name: &str,
        clk: NetId,
        width: usize,
        stations: usize,
        wire_delay: Time,
    ) -> RelayChain {
        assert!(stations >= 1, "a chain needs at least one station");
        let ports: Vec<RelayPort> = (0..stations)
            .map(|i| SyncRelayStation::spawn(sim, &format!("{name}.rs{i}"), clk, width))
            .collect();
        // Wire each station's output bundle to the next station's input,
        // and each station's stop_out back to the previous stop_in.
        for i in 0..stations - 1 {
            let mut fwd = vec![ports[i].out_valid];
            fwd.extend_from_slice(&ports[i].out_data);
            let arrived = WireSegment::spawn(sim, &format!("{name}.wire{i}"), &fwd, wire_delay);
            connect(sim, arrived[0], ports[i + 1].in_valid);
            for (k, &a) in arrived[1..].iter().enumerate() {
                connect(sim, a, ports[i + 1].in_data[k]);
            }
            let back = WireSegment::spawn(
                sim,
                &format!("{name}.stopwire{i}"),
                &[ports[i + 1].stop_out],
                wire_delay,
            );
            connect(sim, back[0], ports[i].stop_in);
        }
        let first = ports.first().expect("non-empty").clone();
        let last = ports.last().expect("non-empty").clone();
        RelayChain {
            port: RelayPort {
                in_valid: first.in_valid,
                in_data: first.in_data,
                stop_out: first.stop_out,
                out_valid: last.out_valid,
                out_data: last.out_data,
                stop_in: last.stop_in,
            },
            stations,
        }
    }
}

/// Splices a mixed-timing design between two single-clock relay chains —
/// the generalised Fig. 11a topology: `upstream` chain (put-side clock
/// domain) → `design` → `downstream` chain (get-side clock domain).
///
/// Any design registered in `mtf_core::design` whose **both** interfaces
/// speak the relay-station stream protocol (`valid`/`stop`) can be
/// spliced; the design is built gate-level through its
/// [`MixedTimingDesign`] impl and wired to the chains with 1 ps
/// repeaters. Returns the built design's ports (for probing the
/// boundary nets), or an error naming the offending interface when the
/// design does not speak the stream protocol on either side or rejects
/// the parameters.
pub fn splice_stream_design(
    sim: &mut Simulator,
    design: &dyn MixedTimingDesign,
    params: FifoParams,
    clk_put: NetId,
    clk_get: NetId,
    upstream: &RelayPort,
    downstream: &RelayPort,
) -> Result<DesignPorts, String> {
    splice_stream_design_with_backend(
        sim,
        design,
        params,
        clk_put,
        clk_get,
        upstream,
        downstream,
        Backend::Event,
    )
}

/// [`splice_stream_design`] with an explicit execution [`Backend`] for the
/// design's netlist. Under [`Backend::Compiled`] the design's synchronous
/// region runs on the compiled engine; the surrounding relay chains and
/// repeaters are behavioural components either way.
#[allow(clippy::too_many_arguments)]
pub fn splice_stream_design_with_backend(
    sim: &mut Simulator,
    design: &dyn MixedTimingDesign,
    params: FifoParams,
    clk_put: NetId,
    clk_get: NetId,
    upstream: &RelayPort,
    downstream: &RelayPort,
    backend: Backend,
) -> Result<DesignPorts, String> {
    let (ports, _netlist) = build_stream_design_with_backend(
        sim,
        design,
        params,
        clk_put,
        clk_get,
        CellDelays::hp06(),
        MetaModel::hp06(),
        backend,
    )?;
    // Upstream chain output → design put interface.
    connect(sim, upstream.out_valid, ports.valid_in.expect("stream put"));
    connect_bus(sim, &upstream.out_data, &ports.data_put);
    connect(sim, ports.stop_out.expect("stream put"), upstream.stop_in);
    // Design get interface → downstream chain input.
    connect(
        sim,
        ports.valid_get.expect("stream get"),
        downstream.in_valid,
    );
    connect_bus(sim, &ports.data_get, &downstream.in_data);
    connect(sim, downstream.stop_out, ports.stop_in.expect("stream get"));
    Ok(ports)
}

/// Elaborates a stream-protocol registry design between two clock nets
/// with an explicit delay calibration and metastability model, **without**
/// wiring it to anything — the caller owns the connects. Returns the
/// design's ports together with its gate-level [`Netlist`] (the sharded
/// runner reads launch delays of boundary-crossing output registers from
/// it). [`splice_stream_design`] is this plus the six standard 1 ps
/// repeater connects, at the default `hp06` calibration.
pub fn build_stream_design(
    sim: &mut Simulator,
    design: &dyn MixedTimingDesign,
    params: FifoParams,
    clk_put: NetId,
    clk_get: NetId,
    delays: CellDelays,
    meta: MetaModel,
) -> Result<(DesignPorts, Netlist), String> {
    build_stream_design_with_backend(
        sim,
        design,
        params,
        clk_put,
        clk_get,
        delays,
        meta,
        Backend::Event,
    )
}

/// [`build_stream_design`] with an explicit execution [`Backend`].
///
/// Under [`Backend::Compiled`], [`mtf_gates::install_compiled`] runs on
/// the finished netlist *before* any external wiring: eligible
/// combinational gates and ideal-window flops are levelized onto a
/// compiled engine, while synchronizer flops with a live metastability
/// model, latches, C-elements and tri-state bus drivers stay on the
/// event kernel (so the RNG draw sequence and bus resolution are
/// unchanged). A design with no eligible cells simply stays event-driven.
#[allow(clippy::too_many_arguments)]
pub fn build_stream_design_with_backend(
    sim: &mut Simulator,
    design: &dyn MixedTimingDesign,
    params: FifoParams,
    clk_put: NetId,
    clk_get: NetId,
    delays: CellDelays,
    meta: MetaModel,
    backend: Backend,
) -> Result<(DesignPorts, Netlist), String> {
    let name = design.kind().name();
    match design.put_interface(params) {
        InterfaceSpec::SyncStream { .. } => {}
        other => {
            return Err(format!(
                "{name}: put side speaks {}, not the relay stream protocol",
                other.label()
            ))
        }
    }
    match design.get_interface(params) {
        InterfaceSpec::SyncStream { .. } => {}
        other => {
            return Err(format!(
                "{name}: get side speaks {}, not the relay stream protocol",
                other.label()
            ))
        }
    }
    design.supports(params)?;
    let mut b = Builder::with_delays(sim, delays, meta);
    let ports = design.build(
        &mut b,
        params,
        ClockInputs {
            clk_put: Some(clk_put),
            clk_get: Some(clk_get),
        },
    );
    let netlist = b.finish();
    if backend == Backend::Compiled {
        install_compiled(sim, &netlist, &format!("compiled.{name}"));
    }
    Ok((ports, netlist))
}

/// Shorts net `from` onto net `to` with a negligible (1 ps) repeater —
/// used to join separately created interface nets.
pub fn connect(sim: &mut Simulator, from: NetId, to: NetId) {
    let drv = sim.driver(to);
    let w = WireSegment {
        name: "connect".into(),
        inputs: vec![from],
        outputs: vec![drv],
        delay: Time::from_ps(1),
    };
    sim.add_component(Box::new(w), &[from]);
}

/// Connects a whole bundle pairwise (see [`connect`]).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn connect_bus(sim: &mut Simulator, from: &[NetId], to: &[NetId]) {
    assert_eq!(from.len(), to.len(), "bundle width mismatch");
    for (&f, &t) in from.iter().zip(to) {
        connect(sim, f, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtf_core::env::{PacketSink, PacketSource};
    use mtf_sim::ClockGen;

    fn rig(stations: usize, stalls: Vec<(u64, u64)>) -> (Vec<u64>, Vec<u64>) {
        let mut sim = Simulator::new(55);
        let clk = sim.net("clk");
        ClockGen::spawn_simple(&mut sim, clk, Time::from_ns(10));
        let chain = RelayChain::spawn(&mut sim, "chain", clk, 8, stations, Time::from_ns(3));
        let packets: Vec<Option<u64>> = (0..40).map(Some).collect();
        let sj = PacketSource::spawn(
            &mut sim,
            "src",
            clk,
            chain.port.in_valid,
            &chain.port.in_data,
            chain.port.stop_out,
            packets,
        );
        let kj = PacketSink::spawn(
            &mut sim,
            "sink",
            clk,
            &chain.port.out_data,
            chain.port.out_valid,
            chain.port.stop_in,
            stalls,
        );
        sim.run_until(Time::from_us(3)).unwrap();
        (sj.values(), kj.values())
    }

    #[test]
    fn single_station_passes_everything() {
        let (sent, got) = rig(1, vec![]);
        assert_eq!(sent.len(), 40);
        assert_eq!(got, sent);
    }

    #[test]
    fn long_chain_preserves_order() {
        let (sent, got) = rig(6, vec![]);
        assert_eq!(got, sent);
    }

    #[test]
    fn chain_survives_sink_stalls() {
        let (sent, got) = rig(4, vec![(8, 20), (30, 45)]);
        assert_eq!(got, sent, "stalls must not lose or duplicate packets");
    }

    #[test]
    fn chain_latency_grows_with_length() {
        let first_arrival = |stations: usize| {
            let mut sim = Simulator::new(7);
            let clk = sim.net("clk");
            ClockGen::spawn_simple(&mut sim, clk, Time::from_ns(10));
            let chain = RelayChain::spawn(&mut sim, "chain", clk, 8, stations, Time::from_ns(3));
            let sj = PacketSource::spawn(
                &mut sim,
                "src",
                clk,
                chain.port.in_valid,
                &chain.port.in_data,
                chain.port.stop_out,
                vec![Some(42)],
            );
            let kj = PacketSink::spawn(
                &mut sim,
                "sink",
                clk,
                &chain.port.out_data,
                chain.port.out_valid,
                chain.port.stop_in,
                vec![],
            );
            sim.run_until(Time::from_us(2)).unwrap();
            assert_eq!(sj.len(), 1);
            kj.time_of(0).expect("delivered")
        };
        let short = first_arrival(1);
        let long = first_arrival(5);
        assert!(
            long >= short + Time::from_ns(30),
            "each extra station adds at least a cycle: {short} -> {long}"
        );
    }

    #[test]
    fn splice_carries_packets_across_a_clock_boundary() {
        use mtf_core::design::MIXED_CLOCK_RS;

        let mut sim = Simulator::new(21);
        let clk_a = sim.net("clk_a");
        let clk_b = sim.net("clk_b");
        ClockGen::spawn_simple(&mut sim, clk_a, Time::from_ns(10));
        ClockGen::builder(Time::from_ns(13))
            .phase(Time::from_ps(2_400))
            .spawn(&mut sim, clk_b);
        let left = RelayChain::spawn(&mut sim, "l", clk_a, 8, 2, Time::from_ns(1));
        let right = RelayChain::spawn(&mut sim, "r", clk_b, 8, 2, Time::from_ns(1));
        let ports = splice_stream_design(
            &mut sim,
            &MIXED_CLOCK_RS,
            FifoParams::new(8, 8),
            clk_a,
            clk_b,
            &left.port,
            &right.port,
        )
        .expect("MCRS speaks the stream protocol on both sides");
        assert!(ports.valid_in.is_some() && ports.stop_in.is_some());
        let packets: Vec<Option<u64>> = (0..60).map(Some).collect();
        let sj = PacketSource::spawn(
            &mut sim,
            "src",
            clk_a,
            left.port.in_valid,
            &left.port.in_data,
            left.port.stop_out,
            packets,
        );
        let kj = PacketSink::spawn(
            &mut sim,
            "sink",
            clk_b,
            &right.port.out_data,
            right.port.out_valid,
            right.port.stop_in,
            vec![(10, 25)],
        );
        sim.run_until(Time::from_us(10)).unwrap();
        assert_eq!(kj.values(), sj.values(), "boundary splice is lossless");
    }

    #[test]
    fn splice_rejects_non_stream_designs() {
        use mtf_core::design::MIXED_CLOCK;

        let mut sim = Simulator::new(22);
        let clk = sim.net("clk");
        ClockGen::spawn_simple(&mut sim, clk, Time::from_ns(10));
        let left = RelayChain::spawn(&mut sim, "l", clk, 8, 1, Time::from_ns(1));
        let right = RelayChain::spawn(&mut sim, "r", clk, 8, 1, Time::from_ns(1));
        let err = splice_stream_design(
            &mut sim,
            &MIXED_CLOCK,
            FifoParams::new(8, 8),
            clk,
            clk,
            &left.port,
            &right.port,
        )
        .unwrap_err();
        assert!(err.contains("not the relay stream protocol"), "got: {err}");
    }

    #[test]
    fn steady_state_throughput_is_one_packet_per_cycle() {
        let mut sim = Simulator::new(9);
        let clk = sim.net("clk");
        ClockGen::spawn_simple(&mut sim, clk, Time::from_ns(10));
        let chain = RelayChain::spawn(&mut sim, "chain", clk, 8, 4, Time::from_ns(3));
        let packets: Vec<Option<u64>> = (0..100).map(Some).collect();
        let _sj = PacketSource::spawn(
            &mut sim,
            "src",
            clk,
            chain.port.in_valid,
            &chain.port.in_data,
            chain.port.stop_out,
            packets,
        );
        let kj = PacketSink::spawn(
            &mut sim,
            "sink",
            clk,
            &chain.port.out_data,
            chain.port.out_valid,
            chain.port.stop_in,
            vec![],
        );
        sim.run_until(Time::from_us(3)).unwrap();
        let times = kj.times();
        assert!(times.len() >= 90);
        let mid = &times[20..80];
        for w in mid.windows(2) {
            assert_eq!((w[1] - w[0]).as_ps(), 10_000, "no bubbles in steady state");
        }
    }
}
