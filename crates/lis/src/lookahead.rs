//! Static soundness audit of the sharded kernel's lookahead claims.
//!
//! [`run_chain_sharded`](crate::run_chain_sharded) cuts a chain at its
//! boundary designs and lets each shard promise its neighbours "no
//! event on this cut before the next clock-edge launch landing". Those
//! promises are *claims about netlists*: the backward cut claims the
//! boundary design's `stop_out` moves exactly `clock-to-Q` after the
//! upstream clock edge, the forward cut claims the tail relay station's
//! `out_valid`/`out_data` move exactly [`RS_CQ`] after its edge. If a
//! claim ever overstated the real contamination delay — a combinational
//! path sneaking onto the cut, a flop re-clocked onto the wrong domain,
//! a buffer inserted after the launch flop — the null-message protocol
//! would grant a neighbour permission to simulate past an event it had
//! not yet received, and the merge would silently diverge.
//!
//! This module closes that gap statically. [`audit_chain_lookahead`]
//! re-plans the same cuts as the sharded runner, elaborates each
//! boundary design exactly as `build_shard` does (same builder, same
//! delays, same ideal metastability model — nothing runs), and proves
//! with the min-delay analysis of [`mtf_timing::Sta`] that every
//! claimed launch delay equals the netlist's true launch window:
//!
//! * **backward cuts** (gate-level designs): `stop_out` must have a
//!   single edge-triggered driver clocked directly by the upstream
//!   clock, and [`Sta::launch_window`] on it must be exactly
//!   `(claimed, claimed)` — the claim is not merely conservative but
//!   *exact*, which is what makes the sharded merge byte-identical;
//! * **backward cuts** (behavioural `sync_rs`): no netlist driver
//!   exists to time, so the audit pins the claim to the behavioural
//!   relay contract ([`RS_CQ`] after the edge — the invariant
//!   `mtf_core::SyncRelayStation` maintains by construction);
//! * **forward cuts**: the exported nets are behavioural relay-station
//!   outputs, audited against the same [`RS_CQ`] contract;
//! * **hold**: for every gate-level boundary design, the same-edge
//!   min-delay check ([`Sta::hold_slack`]) must be non-negative in both
//!   domains — a hold race inside a boundary design would invalidate
//!   the "registered cut" premise itself.
//!
//! The audit is cut-complete: it walks **every** internal boundary of
//! **every** shard plan it is given, so `tests/lookahead_soundness.rs`
//! can sweep the 64-domain ladder at all shard counts and know no cut
//! was sampled away.

use std::collections::HashMap;
use std::fmt;

use mtf_core::design::DesignRegistry;
use mtf_core::{MixedTimingDesign, RS_CQ};
use mtf_gates::{CellDelays, Netlist};
use mtf_sim::{Backend, MetaModel, NetId, Simulator, Time};
use mtf_timing::Sta;

use crate::build_stream_design_with_backend;
use crate::chain::ChainSpec;
use crate::shard::plan_chain_shards;

/// The verdict on one cut signal's claimed launch delay.
#[derive(Clone, Debug)]
pub struct CutAudit {
    /// Index of the boundary design the cut runs through.
    pub boundary: usize,
    /// Registry name of that design.
    pub design: String,
    /// `"forward"` (valid/data, downstream) or `"backward"` (stop,
    /// upstream).
    pub direction: &'static str,
    /// The launch delay the sharded runner would claim for this cut, in
    /// picoseconds (what `build_shard` puts in its `LinkLaunch`).
    pub claimed_ps: u64,
    /// The netlist's true launch window `(earliest, latest)` in
    /// picoseconds — `None` for behavioural contracts with no gates to
    /// time.
    pub window_ps: Option<(u64, u64)>,
    /// Whether the claim is proven sound (and exact).
    pub sound: bool,
    /// How the verdict was reached, one sentence.
    pub detail: String,
}

impl fmt::Display for CutAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b{} {} {}: claimed {} ps, {} — {}",
            self.boundary,
            self.design,
            self.direction,
            self.claimed_ps,
            if self.sound { "sound" } else { "UNSOUND" },
            self.detail
        )
    }
}

/// The same-edge min-delay verdict on one boundary design in one domain.
#[derive(Clone, Debug)]
pub struct HoldAudit {
    /// Registry name of the design.
    pub design: String,
    /// `"put"` or `"get"` — which clock domain was checked.
    pub domain: &'static str,
    /// Worst contamination-minus-hold margin, in picoseconds.
    pub slack_ps: i64,
    /// Capture pins checked.
    pub checked: usize,
}

/// Everything [`audit_chain_lookahead`] proves about one shard plan.
#[derive(Clone, Debug)]
pub struct LookaheadAudit {
    /// Effective shard count (`min(requested, segments)`).
    pub shards: usize,
    /// One forward + one backward verdict per internal cut, in flow
    /// order.
    pub cuts: Vec<CutAudit>,
    /// Hold margins of every distinct gate-level boundary design, per
    /// clocked domain.
    pub holds: Vec<HoldAudit>,
}

impl LookaheadAudit {
    /// True when every cut claim is proven and no hold margin is
    /// negative.
    pub fn is_sound(&self) -> bool {
        self.cuts.iter().all(|c| c.sound) && self.holds.iter().all(|h| h.slack_ps >= 0)
    }

    /// The failures, rendered — empty iff [`is_sound`](Self::is_sound).
    pub fn failures(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .cuts
            .iter()
            .filter(|c| !c.sound)
            .map(|c| c.to_string())
            .collect();
        out.extend(
            self.holds
                .iter()
                .filter(|h| h.slack_ps < 0)
                .map(|h| format!("{} {} hold slack {} ps", h.design, h.domain, h.slack_ps)),
        );
        out
    }
}

/// Proves that `net` in `netlist` launches **exactly** `claimed` after
/// every rising edge of `clock`: it must have one edge-triggered driver
/// clocked directly by `clock`, and the min-delay launch window must be
/// the degenerate `(claimed, claimed)`. This is the primitive behind
/// every gate-level cut verdict; it is public so negative tests can
/// prove a wrong claim (e.g. `claimed + 1 ps`) is rejected.
///
/// # Errors
///
/// A one-sentence reason when the claim is not proven.
pub fn registered_launch_exact(
    netlist: &Netlist,
    clock: NetId,
    net: NetId,
    claimed: Time,
) -> Result<(), String> {
    let drivers: Vec<_> = netlist.drivers_of(net).collect();
    let (_, inst) = match drivers.as_slice() {
        [one] => *one,
        [] => return Err("no netlist driver — behavioural net".into()),
        more => return Err(format!("{} drivers on the cut net", more.len())),
    };
    if !inst.kind.is_edge_triggered() {
        return Err(format!("driver {} is not edge-triggered", inst.name));
    }
    if inst.clock != Some(clock) {
        return Err(format!(
            "driver {} is not clocked directly by the claimed domain's clock",
            inst.name
        ));
    }
    let (lo, hi) = Sta::new(netlist)
        .launch_window(clock, net)
        .ok_or("no launch window (cyclic or unlaunched)")?;
    if (lo, hi) != (claimed, claimed) {
        return Err(format!(
            "claimed {} ps but the netlist's launch window is ({}, {}) ps",
            claimed.as_ps(),
            lo.as_ps(),
            hi.as_ps()
        ));
    }
    Ok(())
}

/// One boundary design, elaborated standalone exactly as `build_shard`
/// would (same builder, [`CellDelays::hp06`], [`MetaModel::ideal`],
/// nothing runs), with its claimed backward-cut delay read off the same
/// way.
struct BoundaryElab {
    netlist: Netlist,
    clk_put: NetId,
    clk_get: NetId,
    stop_out: NetId,
    claimed: Time,
}

fn elaborate_boundary(design: &'static dyn MixedTimingDesign, spec: &ChainSpec) -> BoundaryElab {
    let mut sim = Simulator::new(0);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    let (ports, netlist) = build_stream_design_with_backend(
        &mut sim,
        design,
        spec.params(),
        clk_put,
        clk_get,
        CellDelays::hp06(),
        MetaModel::ideal(),
        Backend::Event,
    )
    .expect("validated stream design");
    let stop_out = ports.stop_out.expect("stream put");
    // The exact expression build_shard uses for its LinkLaunch delay.
    let claimed = netlist
        .drivers_of(stop_out)
        .next()
        .map(|(id, _)| netlist.delay_of(id))
        .unwrap_or(RS_CQ);
    BoundaryElab {
        netlist,
        clk_put,
        clk_get,
        stop_out,
        claimed,
    }
}

/// Statically audits every cut the sharded runner would make when asked
/// for `requested` shards of `spec`: re-plans the partition with
/// [`plan_chain_shards`], elaborates each cut's boundary design, and
/// proves each claimed launch delay against the netlist (see the module
/// docs for the per-direction obligations). Also checks every distinct
/// gate-level boundary design for same-edge hold races in both domains.
///
/// # Errors
///
/// `Err` when `spec` itself does not validate. An *unsound claim* is
/// not an `Err` — it is reported in the returned audit, so a test can
/// print all failures at once.
pub fn audit_chain_lookahead(spec: &ChainSpec, requested: usize) -> Result<LookaheadAudit, String> {
    spec.validate()?;
    let groups = plan_chain_shards(spec, requested);
    let mut elabs: HashMap<String, BoundaryElab> = HashMap::new();
    let mut cuts = Vec::new();

    for group in groups.iter().skip(1) {
        let bd = group.start - 1;
        let name = spec.boundaries[bd].clone();
        let design: &'static dyn MixedTimingDesign =
            DesignRegistry::get(&name).ok_or_else(|| format!("unknown design {name}"))?;
        let elab = elabs
            .entry(name.clone())
            .or_insert_with(|| elaborate_boundary(design, spec));

        // Forward cut: the upstream tail relay station's valid/data.
        // Relay stations are behavioural; their contract drives outputs
        // exactly RS_CQ after each rising edge, and build_shard claims
        // exactly RS_CQ.
        cuts.push(CutAudit {
            boundary: bd,
            design: name.clone(),
            direction: "forward",
            claimed_ps: RS_CQ.as_ps(),
            window_ps: None,
            sound: RS_CQ > Time::ZERO,
            detail: "behavioural SyncRelayStation contract: outputs move exactly RS_CQ \
                     after the rising edge"
                .into(),
        });

        // Backward cut: the boundary design's stop_out on the upstream
        // clock.
        let claimed = elab.claimed;
        let gate_level = elab.netlist.drivers_of(elab.stop_out).next().is_some();
        let (sound, window_ps, detail) = if gate_level {
            match registered_launch_exact(&elab.netlist, elab.clk_put, elab.stop_out, claimed) {
                Ok(()) => {
                    let w = Sta::new(&elab.netlist)
                        .launch_window(elab.clk_put, elab.stop_out)
                        .map(|(lo, hi)| (lo.as_ps(), hi.as_ps()));
                    (
                        true,
                        w,
                        "single put-clocked flop drives the cut; launch window equals \
                         the claim exactly"
                            .to_string(),
                    )
                }
                Err(why) => (false, None, why),
            }
        } else if claimed == RS_CQ {
            (
                true,
                None,
                "behavioural design: stop_out launches RS_CQ after its clock edge by \
                 the relay contract"
                    .to_string(),
            )
        } else {
            (
                false,
                None,
                format!(
                    "behavioural design but claimed {} ps ≠ RS_CQ {} ps",
                    claimed.as_ps(),
                    RS_CQ.as_ps()
                ),
            )
        };
        cuts.push(CutAudit {
            boundary: bd,
            design: name,
            direction: "backward",
            claimed_ps: claimed.as_ps(),
            window_ps,
            sound,
            detail,
        });
    }

    // Hold audit: every distinct gate-level boundary design, both
    // domains. Behavioural designs have no gates to race.
    let mut holds = Vec::new();
    let mut names: Vec<&String> = elabs.keys().collect();
    names.sort();
    for name in names {
        let elab = &elabs[name];
        if elab.netlist.is_empty() {
            continue;
        }
        let sta = Sta::new(&elab.netlist);
        for (domain, clk) in [("put", elab.clk_put), ("get", elab.clk_get)] {
            if let Some(h) = sta.hold_slack(clk) {
                holds.push(HoldAudit {
                    design: name.clone(),
                    domain,
                    slack_ps: h.slack_ps,
                    checked: h.checked,
                });
            }
        }
    }

    Ok(LookaheadAudit {
        shards: groups.len(),
        cuts,
        holds,
    })
}
