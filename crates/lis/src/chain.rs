//! Heterogeneous latency-insensitive chain composition (paper Section 5).
//!
//! The paper's headline application drops mixed-timing relay stations into
//! a Carloni-style relay-station chain. [`splice_stream_design`](crate::splice_stream_design) handles a
//! single boundary; this module composes **whole systems**: an arbitrary
//! sequence of registry-named stream designs separating single-clock relay
//! segments, each segment with its own clock domain (independent period
//! and phase) and wire delay, plus an optional asynchronous head segment (a
//! micropipeline of asynchronous relay stations) bridged into the first
//! synchronous domain by the ASRS — the full Fig. 14 topology, generalised.
//!
//! Three layers:
//!
//! * **Describe** — [`ChainSpec`] (segments, boundary design names, async
//!   head) with [`ChainSpec::validate`] rejecting ill-formed topologies
//!   (non-stream boundary designs, single-clock designs asked to bridge
//!   distinct domains, wire delays that defeat segmentation).
//! * **Predict** — [`predict_latency`] / [`predict_throughput`] derive an
//!   end-to-end min/max latency envelope and a steady-state throughput
//!   band from per-boundary FIFO capacity, synchronizer depth, and the
//!   clock ratios, per Section 5 of the paper.
//! * **Run & verify** — [`ChainBuilder`] elaborates the spec into one
//!   simulation with per-boundary probes; [`run_chain`] drives it with the
//!   golden-queue source/sink and produces a [`ChainReport`];
//!   [`verify_chain`] asserts losslessness, FIFO order, the latency
//!   envelope, the throughput band, and deadlock-freedom under injected
//!   `stopIn` backpressure.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use mtf_async::{micropipeline, FourPhaseProducer, OpJournal};
use mtf_core::design::DesignRegistry;
use mtf_core::env::{PacketSink, PacketSource};
use mtf_core::{AsyncSyncRelayStation, Clocking, FifoParams, InterfaceSpec, MixedTimingDesign};
use mtf_gates::{install_compiled, Builder};
use mtf_sim::{Backend, ClockGen, Component, Ctx, Logic, NetId, Simulator, Time};

use crate::{connect, connect_bus, splice_stream_design_with_backend, RelayChain, RelayPort};

/// One synchronous clock domain: a free-running clock with the given
/// period and phase offset. Two [`DomainSpec`]s are *the same domain* iff
/// they are equal — the builder then shares one clock net between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DomainSpec {
    /// Clock period.
    pub period: Time,
    /// Phase offset of the first rising edge.
    pub phase: Time,
}

impl DomainSpec {
    /// A domain with the given period and zero phase.
    pub fn new(period: Time) -> Self {
        DomainSpec {
            period,
            phase: Time::ZERO,
        }
    }

    /// A domain with an explicit phase offset.
    pub fn with_phase(period: Time, phase: Time) -> Self {
        DomainSpec { period, phase }
    }
}

/// One single-clock relay-chain segment: `stations` Carloni relay stations
/// in `domain`, with `wire_delay` of interconnect between consecutive
/// stations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentSpec {
    /// The segment's clock domain.
    pub domain: DomainSpec,
    /// Number of relay stations (≥ 1).
    pub stations: usize,
    /// Interconnect delay between consecutive stations (must stay below
    /// the domain period — that is the point of segmentation).
    pub wire_delay: Time,
}

/// A declarative description of a heterogeneous LIS chain:
/// `segments[0] → boundaries[0] → segments[1] → … → segments[n-1]`, with
/// an optional asynchronous micropipeline head bridged into `segments[0]`
/// by an [`AsyncSyncRelayStation`].
///
/// Boundary designs are named by their registry name (see
/// [`DesignRegistry::streams`]); both their interfaces must speak the
/// relay stream protocol (`valid`/`stop`).
#[derive(Clone, Debug)]
pub struct ChainSpec {
    /// Packet width in bits.
    pub width: usize,
    /// FIFO capacity of every boundary design.
    pub capacity: usize,
    /// Synchronizer depth of every boundary design.
    pub sync_stages: usize,
    /// Number of asynchronous relay-station (micropipeline) stages in the
    /// optional async head, bridged by an ASRS into `segments[0]`.
    pub async_head: Option<usize>,
    /// The synchronous relay-chain segments, in flow order.
    pub segments: Vec<SegmentSpec>,
    /// Registry names of the boundary designs between consecutive
    /// segments; must have exactly `segments.len() - 1` entries.
    pub boundaries: Vec<String>,
}

impl ChainSpec {
    /// An empty spec (no segments yet) with the default synchronizer
    /// depth; grow it with [`segment`](Self::segment) /
    /// [`boundary`](Self::boundary) / [`with_async_head`](Self::with_async_head).
    pub fn new(width: usize, capacity: usize) -> Self {
        ChainSpec {
            width,
            capacity,
            sync_stages: 2,
            async_head: None,
            segments: Vec::new(),
            boundaries: Vec::new(),
        }
    }

    /// Appends a segment of `stations` stations clocked at
    /// (`period_ps`, `phase_ps`), with 1 ns of inter-station wire.
    pub fn segment(mut self, period_ps: u64, phase_ps: u64, stations: usize) -> Self {
        self.segments.push(SegmentSpec {
            domain: DomainSpec::with_phase(Time::from_ps(period_ps), Time::from_ps(phase_ps)),
            stations,
            wire_delay: Time::from_ns(1),
        });
        self
    }

    /// Appends a boundary design by registry name (between the segment
    /// already pushed and the next one).
    pub fn boundary(mut self, design: &str) -> Self {
        self.boundaries.push(design.to_string());
        self
    }

    /// Adds an asynchronous head: a `stages`-deep micropipeline bridged by
    /// an ASRS into the first segment.
    pub fn with_async_head(mut self, stages: usize) -> Self {
        self.async_head = Some(stages);
        self
    }

    /// The FIFO parameters every boundary design is built with.
    pub fn params(&self) -> FifoParams {
        FifoParams::with_sync_stages(self.capacity, self.width, self.sync_stages)
    }

    /// Total number of timing boundaries (sync boundaries + async head).
    pub fn boundary_count(&self) -> usize {
        self.boundaries.len() + usize::from(self.async_head.is_some())
    }

    /// The slowest domain's period — the chain's steady-state bottleneck.
    pub fn slowest_period(&self) -> Time {
        self.segments
            .iter()
            .map(|s| s.domain.period)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Checks the spec is well-formed and every boundary design exists,
    /// speaks the stream protocol on both sides, and supports
    /// [`params`](Self::params). Single-clock stream designs (e.g.
    /// `sync_rs`) are rejected between segments of *different* domains —
    /// they have no synchronizers and would be unsafe there (which is the
    /// paper's argument for MCRS in the first place).
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err("chain needs at least one segment".into());
        }
        if self.boundaries.len() + 1 != self.segments.len() {
            return Err(format!(
                "{} segments need exactly {} boundaries (got {})",
                self.segments.len(),
                self.segments.len() - 1,
                self.boundaries.len()
            ));
        }
        if self.capacity < 3 {
            return Err(format!(
                "capacity must be at least 3 (got {})",
                self.capacity
            ));
        }
        if self.width == 0 || self.width > 63 {
            return Err(format!("width must be in 1..=63 (got {})", self.width));
        }
        if self.sync_stages == 0 {
            return Err("at least one synchronizer stage required".into());
        }
        if self.async_head == Some(0) {
            return Err("async head needs at least one micropipeline stage".into());
        }
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.stations == 0 {
                return Err(format!("segment {i} needs at least one station"));
            }
            if seg.domain.period == Time::ZERO {
                return Err(format!("segment {i} has a zero clock period"));
            }
            if seg.wire_delay >= seg.domain.period {
                return Err(format!(
                    "segment {i}: wire delay {} is not below the clock period {} — \
                     segmentation is defeated",
                    seg.wire_delay, seg.domain.period
                ));
            }
        }
        let params = self.params();
        for (i, name) in self.boundaries.iter().enumerate() {
            let design = DesignRegistry::get(name)
                .ok_or_else(|| format!("boundary {i}: no design named \"{name}\""))?;
            for (side, spec) in [
                ("put", design.put_interface(params)),
                ("get", design.get_interface(params)),
            ] {
                if !matches!(spec, InterfaceSpec::SyncStream { .. }) {
                    return Err(format!(
                        "boundary {i} ({name}): {side} side speaks {}, \
                         not the relay stream protocol",
                        spec.label()
                    ));
                }
            }
            design
                .supports(params)
                .map_err(|e| format!("boundary {i} ({name}): {e}"))?;
            let single_clock = matches!(design.clocking(), Clocking::GetOnly | Clocking::PutOnly);
            if single_clock && self.segments[i].domain != self.segments[i + 1].domain {
                return Err(format!(
                    "boundary {i} ({name}): single-clock design cannot bridge \
                     distinct domains (no synchronizers) — use mixed_clock_rs"
                ));
            }
        }
        Ok(())
    }
}

/// The external nets of an asynchronous chain head: the producer side of
/// the first micropipeline stage (4-phase bundled data).
#[derive(Clone, Debug)]
pub struct AsyncPort {
    /// Request input (producer-driven).
    pub req: NetId,
    /// Acknowledge output.
    pub ack: NetId,
    /// Data bus (producer-driven).
    pub data: Vec<NetId>,
}

/// Event counters one [`BoundaryProbe`] accumulates while the simulation
/// runs.
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    put_accepts: u64,
    put_stall_cycles: u64,
    get_delivers: u64,
    get_stall_cycles: u64,
    occupancy: i64,
    max_occupancy: i64,
}

/// What the put side of a probed boundary looks like.
enum ProbePut {
    /// Clocked stream protocol: sample `valid`/`stop` at `clk`'s edge.
    Stream {
        clk: NetId,
        valid: NetId,
        stop: NetId,
        prev_clk: Logic,
    },
    /// 4-phase async protocol: each `ack` rising edge is one accept.
    Async { ack: NetId, prev_ack: Logic },
}

/// A passive observer on one timing boundary: counts accepted packets,
/// stall cycles, delivered packets, and tracks occupancy (accepts minus
/// delivers) to report the high-water mark.
struct BoundaryProbe {
    name: String,
    put: ProbePut,
    get_clk: NetId,
    valid_get: NetId,
    stop_in: NetId,
    prev_get_clk: Logic,
    counters: Rc<RefCell<Counters>>,
}

impl std::fmt::Debug for BoundaryProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundaryProbe")
            .field("name", &self.name)
            .finish()
    }
}

impl Component for BoundaryProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let mut c = self.counters.borrow_mut();
        match &mut self.put {
            ProbePut::Stream {
                clk,
                valid,
                stop,
                prev_clk,
            } => {
                let now = ctx.get(*clk);
                let rising = *prev_clk == Logic::L && now == Logic::H;
                *prev_clk = now;
                if rising {
                    let stopped = ctx.get(*stop) == Logic::H;
                    if stopped {
                        c.put_stall_cycles += 1;
                    } else if ctx.get(*valid) == Logic::H {
                        c.put_accepts += 1;
                        c.occupancy += 1;
                        c.max_occupancy = c.max_occupancy.max(c.occupancy);
                    }
                }
            }
            ProbePut::Async { ack, prev_ack } => {
                let now = ctx.get(*ack);
                let rising = *prev_ack == Logic::L && now == Logic::H;
                *prev_ack = now;
                if rising {
                    c.put_accepts += 1;
                    c.occupancy += 1;
                    c.max_occupancy = c.max_occupancy.max(c.occupancy);
                }
            }
        }
        let now = ctx.get(self.get_clk);
        let rising = self.prev_get_clk == Logic::L && now == Logic::H;
        self.prev_get_clk = now;
        if rising {
            if ctx.get(self.stop_in) == Logic::H {
                c.get_stall_cycles += 1;
            } else if ctx.get(self.valid_get) == Logic::H {
                c.get_delivers += 1;
                c.occupancy -= 1;
            }
        }
    }
}

/// A handle onto one boundary's probe counters, kept by [`BuiltChain`].
#[derive(Clone, Debug)]
pub(crate) struct ProbeHandle {
    design: String,
    counters: Rc<RefCell<Counters>>,
}

impl ProbeHandle {
    pub(crate) fn report(&self) -> BoundaryReport {
        let c = *self.counters.borrow();
        BoundaryReport {
            design: self.design.clone(),
            put_accepts: c.put_accepts,
            put_stall_cycles: c.put_stall_cycles,
            get_delivers: c.get_delivers,
            get_stall_cycles: c.get_stall_cycles,
            max_occupancy: c.max_occupancy.max(0) as u64,
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_stream_probe(
    sim: &mut Simulator,
    design: &str,
    clk_put: NetId,
    valid_in: NetId,
    stop_out: NetId,
    clk_get: NetId,
    valid_get: NetId,
    stop_in: NetId,
) -> ProbeHandle {
    let counters = Rc::new(RefCell::new(Counters::default()));
    let probe = BoundaryProbe {
        name: format!("probe.{design}"),
        put: ProbePut::Stream {
            clk: clk_put,
            valid: valid_in,
            stop: stop_out,
            prev_clk: Logic::X,
        },
        get_clk: clk_get,
        valid_get,
        stop_in,
        prev_get_clk: Logic::X,
        counters: counters.clone(),
    };
    let watch = if clk_put == clk_get {
        vec![clk_put]
    } else {
        vec![clk_put, clk_get]
    };
    sim.add_component(Box::new(probe), &watch);
    ProbeHandle {
        design: design.to_string(),
        counters,
    }
}

pub(crate) fn spawn_async_probe(
    sim: &mut Simulator,
    design: &str,
    put_ack: NetId,
    clk_get: NetId,
    valid_get: NetId,
    stop_in: NetId,
) -> ProbeHandle {
    let counters = Rc::new(RefCell::new(Counters::default()));
    let probe = BoundaryProbe {
        name: format!("probe.{design}"),
        put: ProbePut::Async {
            ack: put_ack,
            prev_ack: Logic::X,
        },
        get_clk: clk_get,
        valid_get,
        stop_in,
        prev_get_clk: Logic::X,
        counters: counters.clone(),
    };
    sim.add_component(Box::new(probe), &[put_ack, clk_get]);
    ProbeHandle {
        design: design.to_string(),
        counters,
    }
}

/// Elaborates a [`ChainSpec`] into one simulation.
///
/// A unit struct: [`ChainBuilder::build`] is the whole API. Identical
/// [`DomainSpec`]s share a single clock net (so a "same domain" spec means
/// the *same clock*, not two coincidentally aligned generators).
#[derive(Debug)]
pub struct ChainBuilder;

impl ChainBuilder {
    /// Builds every segment, splices every boundary design, constructs the
    /// optional async head, and attaches per-boundary probes.
    pub fn build(sim: &mut Simulator, spec: &ChainSpec) -> Result<BuiltChain, String> {
        Self::build_with_backend(sim, spec, Backend::Event)
    }

    /// [`ChainBuilder::build`] with an explicit execution [`Backend`] for
    /// every gate-level netlist in the chain (the boundary designs and
    /// the async head's micropipeline/ASRS). Relay segments are
    /// behavioural components and run on the event kernel either way.
    pub fn build_with_backend(
        sim: &mut Simulator,
        spec: &ChainSpec,
        backend: Backend,
    ) -> Result<BuiltChain, String> {
        spec.validate()?;
        let params = spec.params();

        // One clock net per distinct domain.
        let mut domain_clk: HashMap<DomainSpec, NetId> = HashMap::new();
        let mut seg_clks = Vec::with_capacity(spec.segments.len());
        for (i, seg) in spec.segments.iter().enumerate() {
            let clk = *domain_clk.entry(seg.domain).or_insert_with(|| {
                let n = sim.net(format!("chain.clk{i}"));
                ClockGen::builder(seg.domain.period)
                    .phase(seg.domain.phase)
                    .spawn(sim, n);
                n
            });
            seg_clks.push(clk);
        }

        let chains: Vec<RelayChain> = spec
            .segments
            .iter()
            .enumerate()
            .map(|(i, seg)| {
                RelayChain::spawn(
                    sim,
                    &format!("chain.seg{i}"),
                    seg_clks[i],
                    spec.width,
                    seg.stations,
                    seg.wire_delay,
                )
            })
            .collect();

        let mut probes = Vec::new();

        // Optional async head: micropipeline → ASRS → first segment
        // (Fig. 14 of the paper).
        let mut async_in = None;
        if let Some(stages) = spec.async_head {
            let mut b = Builder::new(sim);
            let ars = micropipeline(&mut b, stages, spec.width);
            let asrs = AsyncSyncRelayStation::build(&mut b, params, seg_clks[0]);
            let head_netlist = b.finish();
            if backend == Backend::Compiled {
                install_compiled(sim, &head_netlist, "compiled.async_head");
            }
            connect(sim, ars.req_out, asrs.put_req);
            connect_bus(sim, &ars.data_out, &asrs.put_data);
            connect(sim, asrs.put_ack, ars.ack_out);
            connect(sim, asrs.valid_get, chains[0].port.in_valid);
            connect_bus(sim, &asrs.data_get, &chains[0].port.in_data);
            connect(sim, chains[0].port.stop_out, asrs.stop_in);
            probes.push(spawn_async_probe(
                sim,
                "async_sync_rs",
                asrs.put_ack,
                seg_clks[0],
                asrs.valid_get,
                asrs.stop_in,
            ));
            async_in = Some(AsyncPort {
                req: ars.req_in,
                ack: ars.ack_in,
                data: ars.data_in.clone(),
            });
        }

        for (i, name) in spec.boundaries.iter().enumerate() {
            let design: &'static dyn MixedTimingDesign =
                DesignRegistry::get(name).expect("validated");
            let ports = splice_stream_design_with_backend(
                sim,
                design,
                params,
                seg_clks[i],
                seg_clks[i + 1],
                &chains[i].port,
                &chains[i + 1].port,
                backend,
            )?;
            probes.push(spawn_stream_probe(
                sim,
                name,
                seg_clks[i],
                ports.valid_in.expect("stream put"),
                ports.stop_out.expect("stream put"),
                seg_clks[i + 1],
                ports.valid_get.expect("stream get"),
                ports.stop_in.expect("stream get"),
            ));
        }

        let first = &chains[0].port;
        let last = &chains[chains.len() - 1].port;
        Ok(BuiltChain {
            port: RelayPort {
                in_valid: first.in_valid,
                in_data: first.in_data.clone(),
                stop_out: first.stop_out,
                out_valid: last.out_valid,
                out_data: last.out_data.clone(),
                stop_in: last.stop_in,
            },
            async_in,
            src_clk: seg_clks[0],
            sink_clk: seg_clks[seg_clks.len() - 1],
            probes,
        })
    }
}

/// A fully elaborated chain, ready for a source and a sink.
///
/// When the chain has an async head, feed it through
/// [`async_in`](Self::async_in) (the head port's `in_*` nets are already
/// driven by the ASRS and must be left alone); otherwise drive
/// [`port`](Self::port)'s `in_*` nets from a stream source clocked on
/// [`src_clk`](Self::src_clk).
#[derive(Debug)]
pub struct BuiltChain {
    /// Composite stream port: `in_*` at the first segment's head, `out_*`
    /// at the last segment's tail.
    pub port: RelayPort,
    /// The 4-phase producer port, when the chain has an async head.
    pub async_in: Option<AsyncPort>,
    /// Clock of the first (source-side) segment.
    pub src_clk: NetId,
    /// Clock of the last (sink-side) segment.
    pub sink_clk: NetId,
    probes: Vec<ProbeHandle>,
}

impl BuiltChain {
    /// Snapshots every boundary probe (flow order: async head first).
    pub fn boundary_reports(&self) -> Vec<BoundaryReport> {
        self.probes.iter().map(ProbeHandle::report).collect()
    }
}

/// Per-boundary statistics harvested from a probe after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundaryReport {
    /// Registry name of the boundary design.
    pub design: String,
    /// Packets accepted on the put side.
    pub put_accepts: u64,
    /// Put-side clock cycles spent stalled (`stop_out` high). Always zero
    /// for the async head (a 4-phase put has no stall *cycles*).
    pub put_stall_cycles: u64,
    /// Packets delivered on the get side.
    pub get_delivers: u64,
    /// Get-side clock cycles spent back-pressured (`stop_in` high).
    pub get_stall_cycles: u64,
    /// High-water mark of (accepts − delivers): boundary occupancy.
    pub max_occupancy: u64,
}

/// End-to-end measurements of one chain run.
#[derive(Clone, Debug)]
pub struct ChainReport {
    /// Packets accepted from the source.
    pub sent: u64,
    /// Packets delivered at the sink.
    pub delivered: u64,
    /// Fastest source-accept → sink-sample transit observed.
    pub min_latency: Time,
    /// Slowest transit observed.
    pub max_latency: Time,
    /// Steady-state delivery rate (first quartile discarded as warm-up);
    /// `None` when too few packets were delivered to measure.
    pub throughput_hz: Option<f64>,
    /// Per-boundary statistics, in flow order (async head first).
    pub boundaries: Vec<BoundaryReport>,
}

/// How to drive a chain: the scripted payload, the sink's stall schedule,
/// and the simulator seed.
#[derive(Clone, Debug)]
pub struct ChainDrive {
    /// Simulator seed (the run is deterministic given the seed).
    pub seed: u64,
    /// Payload values, in order.
    pub items: Vec<u64>,
    /// Sink `stop_in` windows, in sink-clock cycles `[from, to)`.
    pub stalls: Vec<(u64, u64)>,
}

impl ChainDrive {
    /// `n` deterministic payload values masked to `width` bits, no stalls.
    pub fn clean(seed: u64, n: usize, width: usize) -> Self {
        let mask = (1u64 << width) - 1;
        ChainDrive {
            seed,
            items: (0..n as u64)
                .map(|i| (i * 131 + seed * 7 + 1) & mask)
                .collect(),
            stalls: Vec::new(),
        }
    }

    /// Same payload, plus sink stall windows.
    pub fn with_stalls(seed: u64, n: usize, width: usize, stalls: Vec<(u64, u64)>) -> Self {
        ChainDrive {
            stalls,
            ..Self::clean(seed, n, width)
        }
    }
}

/// The outcome of [`run_chain`]: what went in, what came out, and the
/// measurements.
#[derive(Clone, Debug)]
pub struct ChainRun {
    /// Values the source actually handed over, in acceptance order.
    pub sent: Vec<u64>,
    /// Values the sink sampled, in delivery order.
    pub delivered: Vec<u64>,
    /// The measurements.
    pub report: ChainReport,
}

/// The simulation horizon [`run_chain`] (and the sharded runner) sizes
/// from a spec and drive: every packet gets several slow-domain cycles,
/// plus the full stall schedule twice over, plus pipeline fill and a
/// fixed floor.
pub fn chain_horizon(spec: &ChainSpec, drive: &ChainDrive) -> Time {
    let slowest_ps = spec.slowest_period().as_ps();
    let stall_cycles: u64 = drive.stalls.iter().map(|&(a, b)| b.saturating_sub(a)).sum();
    let fill: u64 = spec.segments.iter().map(|s| s.stations as u64).sum::<u64>()
        + 16 * spec.boundary_count() as u64;
    let cycles = drive.items.len() as u64 * 6 + stall_cycles * 2 + fill * 8 + 256;
    Time::from_ps(slowest_ps * cycles)
}

/// Elaborates `spec`, drives it with the golden-queue source/sink per
/// `drive`, runs to a horizon sized from the spec, and reports.
pub fn run_chain(spec: &ChainSpec, drive: &ChainDrive) -> Result<ChainRun, String> {
    run_chain_impl(spec, drive, false, Backend::Event).map(|(run, _)| run)
}

/// [`run_chain`] with an explicit execution [`Backend`]. The two backends
/// are observationally equivalent — `tests/backend_equivalence.rs` holds
/// them to byte-identical journals, toggle counts and waveforms — but the
/// compiled backend evaluates the synchronous boundary-design regions as
/// straight-line code instead of queue events.
pub fn run_chain_with_backend(
    spec: &ChainSpec,
    drive: &ChainDrive,
    backend: Backend,
) -> Result<ChainRun, String> {
    run_chain_impl(spec, drive, false, backend).map(|(run, _)| run)
}

/// [`run_chain`] with the kernel's delta-race sanitizer enabled: also
/// returns every same-instant read-then-write / write-write hazard the
/// run exercised. The sanitizer is passive — the [`ChainRun`] is
/// identical to [`run_chain`]'s. The chain property suites keep this as
/// a standing check that no chain topology hides an evaluation-order
/// race.
pub fn run_chain_sanitized(
    spec: &ChainSpec,
    drive: &ChainDrive,
) -> Result<(ChainRun, Vec<mtf_sim::RaceHazard>), String> {
    run_chain_impl(spec, drive, true, Backend::Event)
}

/// [`run_chain_sanitized`] with an explicit execution [`Backend`] — the
/// differential suite runs the compiled backend under the sanitizer to
/// show the engine introduces no same-instant ordering hazards.
pub fn run_chain_sanitized_with_backend(
    spec: &ChainSpec,
    drive: &ChainDrive,
    backend: Backend,
) -> Result<(ChainRun, Vec<mtf_sim::RaceHazard>), String> {
    run_chain_impl(spec, drive, true, backend)
}

fn run_chain_impl(
    spec: &ChainSpec,
    drive: &ChainDrive,
    sanitize: bool,
    backend: Backend,
) -> Result<(ChainRun, Vec<mtf_sim::RaceHazard>), String> {
    spec.validate()?;
    let mut sim = Simulator::new(drive.seed);
    if sanitize {
        sim.enable_race_sanitizer();
    }
    let built = ChainBuilder::build_with_backend(&mut sim, spec, backend)?;

    let src_journal: OpJournal = match &built.async_in {
        Some(a) => {
            let ph = FourPhaseProducer::spawn(
                &mut sim,
                "chain.src",
                a.req,
                a.ack,
                &a.data,
                drive.items.clone(),
                Time::from_ps(400),
                Time::ZERO,
            );
            ph.journal().clone()
        }
        None => PacketSource::spawn(
            &mut sim,
            "chain.src",
            built.src_clk,
            built.port.in_valid,
            &built.port.in_data,
            built.port.stop_out,
            drive.items.iter().map(|&v| Some(v)).collect(),
        ),
    };
    let sink_journal = PacketSink::spawn(
        &mut sim,
        "chain.sink",
        built.sink_clk,
        &built.port.out_data,
        built.port.out_valid,
        built.port.stop_in,
        drive.stalls.clone(),
    );

    let horizon = chain_horizon(spec, drive);
    sim.run_until(horizon).map_err(|e| format!("{e:?}"))?;

    let sent = src_journal.values();
    let delivered = sink_journal.values();
    let pairs = sent.len().min(delivered.len());
    let mut min_latency = Time::ZERO;
    let mut max_latency = Time::ZERO;
    for i in 0..pairs {
        let dt = sink_journal.time_of(i).expect("paired") - src_journal.time_of(i).expect("paired");
        if i == 0 || dt < min_latency {
            min_latency = dt;
        }
        if dt > max_latency {
            max_latency = dt;
        }
    }
    let throughput_hz = sink_journal.ops_per_second(delivered.len() / 4);
    let report = ChainReport {
        sent: sent.len() as u64,
        delivered: delivered.len() as u64,
        min_latency,
        max_latency,
        throughput_hz,
        boundaries: built.boundary_reports(),
    };
    let hazards = sim.race_hazards();
    Ok((
        ChainRun {
            sent,
            delivered,
            report,
        },
        hazards,
    ))
}

/// The analytically predicted end-to-end latency band for an uncontended
/// (stall-free) run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyEnvelope {
    /// No packet can transit faster than this.
    pub min: Time,
    /// No uncontended packet should transit slower than this.
    pub max: Time,
}

/// The analytically predicted steady-state throughput band for an
/// uncontended run with an eager source.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputPrediction {
    /// The slowest-domain ceiling: one packet per slowest-clock cycle.
    pub max_hz: f64,
    /// The floor a correct chain must sustain.
    pub min_hz: f64,
}

/// Predicts the end-to-end latency envelope from the spec alone
/// (paper Section 5 reasoning).
///
/// Per segment, each relay station forwards a packet exactly one cycle
/// after absorbing it, so `k` stations contribute `k·T` (the final sink
/// sampling edge is the last station's cycle). Per mixed-clock boundary,
/// the full/empty state crosses an `s`-flop synchronizer on the receiving
/// clock: at least `(s−1)·T_get` (the crossing can land just before an
/// edge), at most `(s+4)·T_get + 2·T_put` (token-ring hand-off, worst
/// edge alignment on both sides, plus detector settling). A single-clock
/// `sync_rs` boundary is simply one more relay station: exactly one cycle.
/// The async head contributes near-zero minimum (an uncontended
/// micropipeline flushes in gate delays) and a per-stage constant plus one
/// synchronizer crossing at most.
///
/// The maximum additionally carries a *queueing* term: an eager source
/// saturates the chain, so a packet can find every upstream buffer full
/// and wait for the whole backlog to drain through the slowest domain at
/// one packet per cycle. The backlog is bounded by the chain's total
/// buffering — two places per relay station, `capacity` per boundary
/// FIFO, one per micropipeline stage — which is why measured worst-case
/// latency grows with boundary capacity even in a stall-free run.
pub fn predict_latency(spec: &ChainSpec) -> LatencyEnvelope {
    let s = spec.sync_stages as u64;
    let mut min_ps: u64 = 0;
    let mut max_ps: u64 = 0;
    for seg in &spec.segments {
        let t = seg.domain.period.as_ps();
        min_ps += seg.stations as u64 * t;
        max_ps += seg.stations as u64 * t;
    }
    for (i, name) in spec.boundaries.iter().enumerate() {
        let t_put = spec.segments[i].domain.period.as_ps();
        let t_get = spec.segments[i + 1].domain.period.as_ps();
        if name == "sync_rs" {
            min_ps += t_get;
            max_ps += 2 * t_get;
        } else {
            min_ps += (s.saturating_sub(1)) * t_get;
            max_ps += (s + 4) * t_get + 2 * t_put;
        }
    }
    if let Some(stages) = spec.async_head {
        let t0 = spec.segments[0].domain.period.as_ps();
        // Min: the pipeline can flush in pure gate delays; claim nothing.
        // Max: a generous 5 ns per micropipeline stage, plus one
        // synchronizer crossing with worst-case alignment into the first
        // sync domain.
        max_ps += stages as u64 * 5_000 + (s + 4) * t0;
    }
    // Queueing under a saturating source: the whole backlog ahead of a
    // packet drains through the bottleneck at one per slowest cycle.
    let backlog: u64 = spec
        .segments
        .iter()
        .map(|s| 2 * s.stations as u64)
        .sum::<u64>()
        + spec.boundaries.len() as u64 * spec.capacity as u64
        + spec.async_head.unwrap_or(0) as u64;
    max_ps += backlog * spec.slowest_period().as_ps();
    // Global slack: source-edge/sink-edge alignment across the whole chain.
    max_ps += spec.slowest_period().as_ps();
    LatencyEnvelope {
        min: Time::from_ps(min_ps),
        max: Time::from_ps(max_ps),
    }
}

/// Predicts the steady-state throughput band from the spec alone.
///
/// The ceiling is one packet per cycle of the *slowest* domain — relay
/// stations and mixed-clock boundaries all sustain a packet per cycle, so
/// the slowest clock is the bottleneck (the paper's Section 5 claim for
/// MCRS throughput). The floor is a fraction of the ceiling: a correct
/// fully-synchronous chain loses at most the synchronizer hand-off
/// overhead; an async-headed chain is additionally throttled by the
/// 4-phase handshake duty cycle of the ASRS put side.
pub fn predict_throughput(spec: &ChainSpec) -> ThroughputPrediction {
    let max_hz = 1e12 / spec.slowest_period().as_ps() as f64;
    let factor = if spec.async_head.is_some() {
        0.30
    } else {
        0.45
    };
    ThroughputPrediction {
        max_hz,
        min_hz: max_hz * factor,
    }
}

/// Everything [`verify_chain`] measured and checked.
#[derive(Clone, Debug)]
pub struct ChainVerification {
    /// The predicted latency envelope the clean run was checked against.
    pub envelope: LatencyEnvelope,
    /// The predicted throughput band the clean run was checked against.
    pub throughput: ThroughputPrediction,
    /// The uncontended run (latency + throughput checks).
    pub clean: ChainRun,
    /// The back-pressured run (losslessness + deadlock-freedom checks).
    pub stalled: ChainRun,
}

/// The sink stall schedule [`verify_chain`] injects: overlapping long and
/// point stalls early, then a long freeze mid-stream — adversarial
/// `stopIn` back-pressure while upstream boundaries are mid-flight.
pub fn verification_stalls() -> Vec<(u64, u64)> {
    vec![(8, 30), (33, 34), (36, 37), (45, 95), (120, 140)]
}

/// Drives `spec` end-to-end twice and checks it against its own
/// predictions:
///
/// 1. **Clean run** — asserts every item is delivered exactly once in
///    FIFO order, the measured min/max latency sits inside
///    [`predict_latency`]'s envelope, and (when `n_items` ≥ 40) the
///    steady-state throughput sits inside [`predict_throughput`]'s band.
/// 2. **Stalled run** — re-runs with [`verification_stalls`] injected at
///    the sink and asserts losslessness and FIFO order again: if any
///    boundary (including the bi-modal empty detector in the MCRS/ASRS
///    get parts) wedged under back-pressure, items would be missing.
///
/// Returns the collected evidence, or the first failed check as `Err`.
pub fn verify_chain(spec: &ChainSpec, n_items: usize) -> Result<ChainVerification, String> {
    verify_chain_with_backend(spec, n_items, Backend::Event)
}

/// [`verify_chain`] with an explicit execution [`Backend`]: the same
/// end-to-end evidence (losslessness, latency envelope, throughput band,
/// stall robustness) collected on the chosen backend. Running this on
/// [`Backend::Compiled`] and diffing the report against the event
/// backend's golden copy is the bench-level equivalence check.
pub fn verify_chain_with_backend(
    spec: &ChainSpec,
    n_items: usize,
    backend: Backend,
) -> Result<ChainVerification, String> {
    let envelope = predict_latency(spec);
    let throughput = predict_throughput(spec);

    let clean = run_chain_with_backend(spec, &ChainDrive::clean(11, n_items, spec.width), backend)?;
    if clean.sent.len() != n_items {
        return Err(format!(
            "clean run: source only handed over {}/{n_items} items",
            clean.sent.len()
        ));
    }
    if clean.delivered != clean.sent {
        return Err(format!(
            "clean run: delivery is not lossless FIFO ({} sent, {} delivered)",
            clean.sent.len(),
            clean.delivered.len()
        ));
    }
    let (lo, hi) = (clean.report.min_latency, clean.report.max_latency);
    if lo < envelope.min || hi > envelope.max {
        return Err(format!(
            "clean run: measured latency [{lo}, {hi}] outside predicted envelope [{}, {}]",
            envelope.min, envelope.max
        ));
    }
    if n_items >= 40 {
        let hz = clean
            .report
            .throughput_hz
            .ok_or("clean run: too few deliveries to measure throughput")?;
        if hz < throughput.min_hz || hz > throughput.max_hz * 1.06 {
            return Err(format!(
                "clean run: throughput {:.1} MHz outside predicted [{:.1}, {:.1}] MHz",
                hz / 1e6,
                throughput.min_hz / 1e6,
                throughput.max_hz / 1e6
            ));
        }
    }

    let stalled = run_chain_with_backend(
        spec,
        &ChainDrive::with_stalls(13, n_items, spec.width, verification_stalls()),
        backend,
    )?;
    if stalled.sent.len() != n_items || stalled.delivered != stalled.sent {
        return Err(format!(
            "stalled run: lost or reordered items under stopIn back-pressure \
             ({} sent, {} delivered) — deadlock or detector wedge",
            stalled.sent.len(),
            stalled.delivered.len()
        ));
    }

    Ok(ChainVerification {
        envelope,
        throughput,
        clean,
        stalled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_domain_spec() -> ChainSpec {
        ChainSpec::new(8, 8)
            .segment(10_000, 0, 2)
            .boundary("mixed_clock_rs")
            .segment(13_000, 2_400, 2)
    }

    #[test]
    fn validate_catches_arity_mismatch() {
        let spec = ChainSpec::new(8, 8)
            .segment(10_000, 0, 2)
            .segment(12_000, 0, 1);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("boundaries"), "got: {err}");
    }

    #[test]
    fn validate_rejects_unknown_design() {
        let spec = ChainSpec::new(8, 8)
            .segment(10_000, 0, 1)
            .boundary("gray_pointer_rs")
            .segment(12_000, 0, 1);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("no design named"), "got: {err}");
    }

    #[test]
    fn validate_rejects_non_stream_boundary() {
        let spec = ChainSpec::new(8, 8)
            .segment(10_000, 0, 1)
            .boundary("mixed_clock")
            .segment(12_000, 0, 1);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("not the relay stream protocol"), "got: {err}");
    }

    #[test]
    fn validate_rejects_sync_rs_across_domains() {
        let spec = ChainSpec::new(8, 8)
            .segment(10_000, 0, 1)
            .boundary("sync_rs")
            .segment(12_000, 0, 1);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("single-clock"), "got: {err}");
        let same = ChainSpec::new(8, 8)
            .segment(10_000, 0, 1)
            .boundary("sync_rs")
            .segment(10_000, 0, 1);
        same.validate().expect("same domain is fine");
    }

    #[test]
    fn validate_rejects_slow_wire() {
        let mut spec = ChainSpec::new(8, 8).segment(10_000, 0, 1);
        spec.segments[0].wire_delay = Time::from_ns(11);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("segmentation"), "got: {err}");
    }

    #[test]
    fn two_domain_chain_runs_lossless() {
        let run = run_chain(&two_domain_spec(), &ChainDrive::clean(3, 50, 8)).unwrap();
        assert_eq!(run.sent.len(), 50);
        assert_eq!(run.delivered, run.sent);
        assert_eq!(run.report.boundaries.len(), 1);
        let b = &run.report.boundaries[0];
        assert_eq!(b.put_accepts, 50);
        assert_eq!(b.get_delivers, 50);
        assert!(b.max_occupancy >= 1);
    }

    #[test]
    fn stalls_show_up_in_boundary_stats() {
        let run = run_chain(
            &two_domain_spec(),
            &ChainDrive::with_stalls(3, 50, 8, vec![(5, 40)]),
        )
        .unwrap();
        assert_eq!(run.delivered, run.sent);
        let b = &run.report.boundaries[0];
        assert!(
            b.put_stall_cycles > 0,
            "a long sink stall must back-pressure the boundary"
        );
    }

    #[test]
    fn predictor_is_monotone_in_chain_length() {
        let short = predict_latency(&two_domain_spec());
        let long = predict_latency(
            &ChainSpec::new(8, 8)
                .segment(10_000, 0, 4)
                .boundary("mixed_clock_rs")
                .segment(13_000, 2_400, 4),
        );
        assert!(long.min > short.min);
        assert!(long.max > short.max);
        assert!(short.min < short.max);
    }

    #[test]
    fn verify_two_domain_chain() {
        verify_chain(&two_domain_spec(), 60).expect("envelope and losslessness hold");
    }
}
