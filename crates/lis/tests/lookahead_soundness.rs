//! Static soundness of the sharded kernel's lookahead on the 64-domain
//! plesiochronous ladder — the same topology `mtf-bench --bin sharded`
//! measures. For every shard count the bench exercises (and several it
//! does not), every cut's claimed launch delay must be proven exact
//! against the boundary design's netlist, and no boundary design may
//! harbour a same-edge hold race. A negative control proves the
//! primitive actually rejects a wrong claim.

use mtf_core::{DesignRegistry, FifoParams, MixedTimingDesign, RS_CQ};
use mtf_gates::CellDelays;
use mtf_lis::{
    audit_chain_lookahead, build_stream_design_with_backend, registered_launch_exact, ChainSpec,
};
use mtf_sim::{Backend, MetaModel, Simulator, Time};

/// The bench's 64-domain ladder: plesiochronous spread around ~100 MHz
/// with scattered phases, mixed-clock relay-station boundaries.
fn relay64(segments: usize) -> ChainSpec {
    let mut spec = ChainSpec::new(8, 4);
    for i in 0..segments as u64 {
        if i > 0 {
            spec = spec.boundary("mixed_clock_rs");
        }
        spec = spec.segment(9_973 + 37 * i, (257 * i) % 4_000, 1);
    }
    spec
}

#[test]
fn every_cut_of_the_64_domain_ladder_is_proven_sound() {
    let spec = relay64(64);
    for shards in [2, 4, 8, 16, 32, 64] {
        let audit = audit_chain_lookahead(&spec, shards).expect("valid spec");
        assert_eq!(audit.shards, shards);
        // One forward + one backward verdict per internal cut.
        assert_eq!(audit.cuts.len(), 2 * (shards - 1), "cut-complete");
        assert!(
            audit.is_sound(),
            "unsound lookahead at {shards} shards:\n{}",
            audit.failures().join("\n")
        );
        // The gate-level backward cuts must be proven by an exact
        // window, not merely asserted.
        for cut in audit.cuts.iter().filter(|c| c.direction == "backward") {
            let (lo, hi) = cut.window_ps.expect("mixed_clock_rs is gate-level");
            assert_eq!(lo, cut.claimed_ps);
            assert_eq!(hi, cut.claimed_ps);
        }
        // Both domains of the (single, cached) boundary design get a
        // hold verdict with real pins behind it.
        assert_eq!(audit.holds.len(), 2);
        assert!(audit.holds.iter().all(|h| h.checked > 0));
    }
}

#[test]
fn a_single_shard_has_no_cuts_to_audit() {
    let audit = audit_chain_lookahead(&relay64(8), 1).expect("valid spec");
    assert_eq!(audit.shards, 1);
    assert!(audit.cuts.is_empty());
    assert!(audit.is_sound());
}

#[test]
fn behavioural_sync_rs_boundaries_audit_by_contract() {
    // sync_rs is single-clock: both segments must share one domain.
    let spec = ChainSpec::new(8, 4)
        .segment(10_000, 0, 2)
        .boundary("sync_rs")
        .segment(10_000, 0, 2);
    let audit = audit_chain_lookahead(&spec, 2).expect("valid spec");
    assert!(audit.is_sound(), "{}", audit.failures().join("\n"));
    let back = audit
        .cuts
        .iter()
        .find(|c| c.direction == "backward")
        .expect("one cut");
    assert_eq!(back.claimed_ps, RS_CQ.as_ps());
    assert!(back.window_ps.is_none(), "no gates to time");
    // And no hold entries: a behavioural design has no capture pins.
    assert!(audit.holds.is_empty());
}

/// Negative control: the proof primitive must reject a claim that
/// overstates the launch delay by even 1 ps — that is exactly the bug
/// class (granting a neighbour too much lookahead) the audit exists to
/// catch.
#[test]
fn an_inflated_claim_is_rejected() {
    let design: &'static dyn MixedTimingDesign =
        DesignRegistry::get("mixed_clock_rs").expect("registered");
    let mut sim = Simulator::new(0);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    let (ports, netlist) = build_stream_design_with_backend(
        &mut sim,
        design,
        FifoParams::new(4, 8),
        clk_put,
        clk_get,
        CellDelays::hp06(),
        MetaModel::ideal(),
        Backend::Event,
    )
    .expect("stream design");
    let stop = ports.stop_out.expect("stream put");
    let claimed = netlist
        .drivers_of(stop)
        .next()
        .map(|(id, _)| netlist.delay_of(id))
        .expect("gate-level");

    registered_launch_exact(&netlist, clk_put, stop, claimed).expect("true claim proven");
    let inflated = claimed + Time::from_ps(1);
    let err = registered_launch_exact(&netlist, clk_put, stop, inflated)
        .expect_err("inflated claim must be rejected");
    assert!(err.contains("launch window"), "{err}");
    // Claiming the launch on the wrong clock must fail too.
    registered_launch_exact(&netlist, clk_get, stop, claimed)
        .expect_err("wrong-domain claim must be rejected");
}
