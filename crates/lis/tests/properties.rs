//! Property tests for the latency-insensitive substrate: chains of any
//! length under arbitrary stall schedules are lossless, order-preserving
//! and duplicate-free, and their fill latency is exactly linear in length.

use mtf_core::env::{PacketSink, PacketSource};
use mtf_lis::RelayChain;
use mtf_sim::{ClockGen, Simulator, Time};
use proptest::prelude::*;

fn run_chain(
    seed: u64,
    stations: usize,
    wire_ps: u64,
    period_ps: u64,
    packets: Vec<Option<u64>>,
    stalls: Vec<(u64, u64)>,
) -> (Vec<u64>, Vec<u64>) {
    let mut sim = Simulator::new(seed);
    let clk = sim.net("clk");
    ClockGen::spawn_simple(&mut sim, clk, Time::from_ps(period_ps));
    let chain = RelayChain::spawn(&mut sim, "ch", clk, 8, stations, Time::from_ps(wire_ps));
    let sj = PacketSource::spawn(
        &mut sim,
        "src",
        clk,
        chain.port.in_valid,
        &chain.port.in_data,
        chain.port.stop_out,
        packets,
    );
    let kj = PacketSink::spawn(
        &mut sim,
        "sink",
        clk,
        &chain.port.out_data,
        chain.port.out_valid,
        chain.port.stop_in,
        stalls,
    );
    sim.run_until(Time::from_us(60)).unwrap();
    (sj.values(), kj.values())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Chains of any length, any wire delay below the period, any stall
    /// schedule, any bubble pattern: exactly the valid packets arrive, in
    /// order.
    #[test]
    fn chains_are_lossless(
        seed in any::<u64>(),
        stations in 1usize..7,
        period in 4_000u64..12_000,
        wire_frac in 1u64..9,
        n in 1usize..40,
        stall_at in 5u64..50,
        stall_len in 0u64..40,
        bubble_every in 2u64..7,
    ) {
        let wire = period * wire_frac / 10;
        let mut packets = Vec::new();
        let mut expect = Vec::new();
        for i in 0..n as u64 {
            if i % bubble_every == 0 {
                packets.push(None);
            }
            packets.push(Some(i % 256));
            expect.push(i % 256);
        }
        let (sent, got) = run_chain(
            seed, stations, wire, period, packets,
            vec![(stall_at, stall_at + stall_len)],
        );
        prop_assert_eq!(sent, expect.clone(), "source finished");
        prop_assert_eq!(got, expect, "sink received exactly the valid packets");
    }

    /// Fill latency is linear in chain length: adding a station adds
    /// one cycle (plus its wire segment's transport).
    #[test]
    fn fill_latency_linear(extra in 1usize..5) {
        let first_arrival = |stations: usize| {
            let mut sim = Simulator::new(1);
            let clk = sim.net("clk");
            ClockGen::spawn_simple(&mut sim, clk, Time::from_ns(10));
            let chain = RelayChain::spawn(&mut sim, "ch", clk, 8, stations, Time::from_ns(2));
            let _sj = PacketSource::spawn(
                &mut sim, "src", clk, chain.port.in_valid, &chain.port.in_data,
                chain.port.stop_out, vec![Some(9)],
            );
            let kj = PacketSink::spawn(
                &mut sim, "sink", clk, &chain.port.out_data, chain.port.out_valid,
                chain.port.stop_in, vec![],
            );
            sim.run_until(Time::from_us(3)).unwrap();
            kj.time_of(0).expect("delivered")
        };
        let base = first_arrival(1);
        let longer = first_arrival(1 + extra);
        let delta = longer - base;
        // Each extra station costs one 10 ns cycle; its wire hop may add
        // up to one more cycle of alignment.
        let lo = Time::from_ns(10) * extra as u64;
        let hi = Time::from_ns(20) * extra as u64 + Time::from_ns(10);
        prop_assert!(
            delta >= lo && delta <= hi,
            "{} extra stations cost {} (expected within [{}, {}])",
            extra, delta, lo, hi
        );
    }

    /// Back-pressure conservation: however long the sink stalls, the
    /// number of packets buffered inside the chain never exceeds two per
    /// station (the relay stations' defining capacity bound).
    #[test]
    fn occupancy_bounded_by_two_per_station(stations in 1usize..6, stall_len in 10u64..80) {
        let n = 60u64;
        let packets: Vec<Option<u64>> = (0..n).map(|v| Some(v % 256)).collect();
        let mut sim = Simulator::new(2);
        let clk = sim.net("clk");
        ClockGen::spawn_simple(&mut sim, clk, Time::from_ns(10));
        let chain = RelayChain::spawn(&mut sim, "ch", clk, 8, stations, Time::from_ns(3));
        let sj = PacketSource::spawn(
            &mut sim, "src", clk, chain.port.in_valid, &chain.port.in_data,
            chain.port.stop_out, packets,
        );
        let kj = PacketSink::spawn(
            &mut sim, "sink", clk, &chain.port.out_data, chain.port.out_valid,
            chain.port.stop_in, vec![(5, 5 + stall_len)],
        );
        // Sample occupancy mid-stall: accepted minus delivered.
        sim.run_until(Time::from_ns(10) * (5 + stall_len / 2)).unwrap();
        let in_flight = sj.len() as i64 - kj.len() as i64;
        prop_assert!(
            in_flight <= 2 * stations as i64,
            "{in_flight} packets buffered in {stations} stations"
        );
        // And everything still arrives.
        sim.run_until(Time::from_us(40)).unwrap();
        prop_assert_eq!(kj.len() as u64, n);
    }
}
