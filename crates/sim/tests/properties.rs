//! Property tests for the simulation kernel: logic algebra, waveform
//! bookkeeping, event ordering, determinism.

use mtf_sim::{ClockGen, Logic, LogicVec, Simulator, Time};
use proptest::prelude::*;

fn logic() -> impl Strategy<Value = Logic> {
    prop_oneof![
        Just(Logic::L),
        Just(Logic::H),
        Just(Logic::X),
        Just(Logic::Z)
    ]
}

proptest! {
    /// `resolve` is a commutative monoid with identity `Z` — the property
    /// multi-driver nets rely on (any fold order gives the same bus value).
    #[test]
    fn resolve_monoid(a in logic(), b in logic(), c in logic()) {
        prop_assert_eq!(a.resolve(b), b.resolve(a));
        prop_assert_eq!(a.resolve(Logic::Z), a);
        prop_assert_eq!(a.resolve(b).resolve(c), a.resolve(b.resolve(c)));
    }

    /// Kleene AND/OR are monotone w.r.t. information: refining an X input
    /// to a definite value never flips a definite output.
    #[test]
    fn kleene_monotonicity(a in logic(), b in logic()) {
        for (x, refined) in [(Logic::X, Logic::L), (Logic::X, Logic::H)] {
            if a == x {
                let before = a.and(b);
                let after = refined.and(b);
                if before.is_definite() {
                    prop_assert_eq!(before, after);
                }
                let before = a.or(b);
                let after = refined.or(b);
                if before.is_definite() {
                    prop_assert_eq!(before, after);
                }
            }
        }
    }

    /// LogicVec round-trips values below its width.
    #[test]
    fn logicvec_round_trip(v in 0u64..=u64::MAX, w in 1usize..=63) {
        let masked = v & ((1u64 << w) - 1);
        let lv = LogicVec::from_u64(masked, w);
        prop_assert_eq!(lv.to_u64(), Some(masked));
        prop_assert_eq!(lv.width(), w);
        prop_assert!(lv.is_definite());
    }

    /// Waveform value_at agrees with a reference fold of the change list.
    #[test]
    fn waveform_matches_reference(changes in prop::collection::vec((1u64..10_000, any::<bool>()), 1..40)) {
        let mut sim = Simulator::new(0);
        let n = sim.net("n");
        let d = sim.driver(n);
        sim.trace(n);
        let mut sorted: Vec<(u64, bool)> = changes.clone();
        sorted.sort();
        sorted.dedup_by_key(|(t, _)| *t);
        for &(t, v) in &sorted {
            sim.drive_at(d, n, Logic::from_bool(v), Time::from_ps(t));
        }
        sim.run_until(Time::from_ps(20_000)).unwrap();
        let wf = sim.waveform(n).unwrap();
        // Reference: last change at or before the query instant.
        for probe in [0u64, 1, 500, 5_000, 9_999, 15_000] {
            let expect = sorted
                .iter()
                .rfind(|&&(t, _)| t <= probe)
                .map(|&(_, v)| Logic::from_bool(v))
                .unwrap_or(Logic::Z);
            prop_assert_eq!(wf.value_at(Time::from_ps(probe)), expect, "at {}", probe);
        }
    }

    /// Identical seeds and stimuli give identical event counts and final
    /// values — the determinism the whole test suite rests on.
    #[test]
    fn determinism(seed in any::<u64>(), period in 500u64..5_000) {
        let run = || {
            let mut sim = Simulator::new(seed);
            let clk = sim.net("clk");
            ClockGen::spawn_simple(&mut sim, clk, Time::from_ps(period));
            sim.trace(clk);
            sim.run_until(Time::from_ps(period * 40)).unwrap();
            (
                sim.events_processed(),
                sim.waveform(clk).unwrap().transition_count(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// A clock generator produces exactly the edges arithmetic predicts.
    #[test]
    fn clock_edge_count(period in 100u64..5_000, phase in 0u64..5_000, cycles in 2u64..50) {
        let mut sim = Simulator::new(0);
        let clk = sim.net("clk");
        ClockGen::builder(Time::from_ps(period))
            .phase(Time::from_ps(phase))
            .spawn(&mut sim, clk);
        sim.trace(clk);
        let horizon = Time::from_ps(phase + period * cycles + 1);
        sim.run_until(horizon).unwrap();
        let wf = sim.waveform(clk).unwrap();
        let rises = wf.edges(mtf_sim::Edge::Rising).count() as u64;
        prop_assert_eq!(rises, cycles, "rising edges at phase + k*period");
    }
}

/// Multi-driver buses resolve independent of driver creation order.
#[test]
fn bus_resolution_order_independent() {
    let value_with_order = |flip: bool| {
        let mut sim = Simulator::new(0);
        let bus = sim.net("bus");
        let (a, b) = if flip {
            let b = sim.driver(bus);
            let a = sim.driver(bus);
            (a, b)
        } else {
            let a = sim.driver(bus);
            let b = sim.driver(bus);
            (a, b)
        };
        sim.drive_at(a, bus, Logic::Z, Time::from_ps(100));
        sim.drive_at(b, bus, Logic::H, Time::from_ps(100));
        sim.run_until(Time::from_ps(200)).unwrap();
        sim.value(bus)
    };
    assert_eq!(value_with_order(false), value_with_order(true));
    assert_eq!(value_with_order(false), Logic::H);
}

/// Inertial cancellation: a short pulse through a slow driver schedule is
/// absorbed (the later schedule supersedes the earlier pending one).
#[test]
fn later_component_schedule_supersedes_earlier() {
    use mtf_sim::{Component, Ctx};
    struct Pulser {
        out: mtf_sim::DriverId,
        fired: bool,
    }
    impl Component for Pulser {
        fn eval(&mut self, ctx: &mut Ctx<'_>) {
            if !self.fired {
                self.fired = true;
                // Schedule H at +1000, then immediately re-schedule L at
                // +500: the H must never appear.
                ctx.drive(self.out, Logic::H, Time::from_ps(1_000));
                ctx.drive(self.out, Logic::L, Time::from_ps(500));
            }
        }
    }
    let mut sim = Simulator::new(0);
    let n = sim.net("n");
    let d = sim.driver(n);
    sim.trace(n);
    sim.add_component(
        Box::new(Pulser {
            out: d,
            fired: false,
        }),
        &[],
    );
    sim.run_until(Time::from_ps(3_000)).unwrap();
    let wf = sim.waveform(n).unwrap();
    assert_eq!(sim.value(n), Logic::L);
    assert!(
        wf.edges(mtf_sim::Edge::Rising).count() == 0,
        "the superseded H drive must never fire"
    );
}
