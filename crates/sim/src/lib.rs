//! # mtf-sim — discrete-event gate-level simulation kernel
//!
//! This crate is the bottom layer of the `mtf` workspace, a reproduction of
//! the mixed-timing FIFO designs of Chelcea & Nowick (DAC 2001). The paper
//! evaluates transistor-level circuits with HSpice; in a pure-Rust
//! environment we substitute a discrete-event logic simulator with a
//! calibrated delay model (see `DESIGN.md` at the workspace root for the
//! substitution argument).
//!
//! The kernel provides:
//!
//! * [`Time`] — picosecond-resolution simulation time.
//! * [`Logic`] — four-valued signal logic (`L`, `H`, `X`, `Z`) with
//!   multi-driver resolution, so the paper's tri-state `get_data` buses can
//!   be modelled faithfully.
//! * [`Simulator`] — the event wheel. Components subscribe to nets; when a
//!   resolved net value changes, every subscriber is re-evaluated at the
//!   same timestamp and may schedule future drives through its [`Ctx`].
//! * [`Component`] — the trait implemented by every gate, flip-flop,
//!   controller engine and test environment in the higher crates.
//! * [`ClockGen`] — free-running clock generators with arbitrary period,
//!   phase and duty cycle, so two clock domains can be genuinely plesiochronous.
//! * [`Probe`] — per-net waveform recording with edge queries, and a VCD
//!   writer ([`vcd`]) for inspecting traces with standard tools.
//! * [`MetaModel`] — the standard analytical synchronizer-metastability
//!   model (sampling window `T_w`, settling constant `tau`), used by the
//!   flip-flops in `mtf-gates` to make clock-domain-crossing hazards
//!   observable, plus MTBF arithmetic for the robustness experiments.
//!
//! ## Drive semantics
//!
//! Every output pin owns a [`DriverId`]. Scheduling a new value on a driver
//! cancels any not-yet-applied pending value from the same driver (inertial
//! behaviour: a glitch shorter than the gate delay does not propagate).
//! A net's resolved value combines all of its drivers' contributions with
//! the usual tri-state rules: `Z` yields to any driven value, conflicting
//! strong values resolve to `X`.
//!
//! ## Determinism
//!
//! All randomness (metastability resolution) flows from a single seeded RNG
//! owned by the simulator, so every run is reproducible.
//!
//! ## Example
//!
//! ```
//! use mtf_sim::{Simulator, Logic, Time};
//!
//! let mut sim = Simulator::new(1);
//! let a = sim.net("a");
//! let d = sim.driver(a);
//! sim.drive_at(d, a, Logic::H, Time::from_ns(5));
//! sim.run_until(Time::from_ns(10));
//! assert_eq!(sim.value(a), Logic::H);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod component;
mod error;
mod event;
mod logic;
mod metastable;
mod net;
mod probe;
#[cfg(test)]
mod queue_props;
pub mod race;
pub mod shard;
mod sim;
mod time;
pub mod vcd;

pub use clock::ClockGen;
pub use component::{Component, ComponentId, Ctx};
pub use error::SimError;
pub use logic::{Logic, LogicVec};
pub use metastable::{mtbf_seconds, MetaModel};
pub use net::{DriverId, NetId};
pub use probe::{Edge, Probe, Waveform};
pub use race::{RaceHazard, RaceHazardKind};
pub use shard::{
    run_sharded, ClockSchedule, ExportSpec, ImportSpec, LinkDef, LinkLaunch, ShardIo, ShardPlan,
    ShardSpec, ShardStats,
};
pub use sim::{Backend, SimStats, Simulator, Violation, ViolationKind};
pub use time::Time;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        ClockGen, Component, ComponentId, Ctx, DriverId, Logic, MetaModel, NetId, Probe, SimError,
        Simulator, Time,
    };
}
