//! Conservative domain-sharded parallel simulation.
//!
//! The paper's central structural claim — mixed-timing domains interact
//! *only* through FIFO interfaces whose boundary signals launch from
//! known clock edges after known synchronizer/register delays — is
//! exactly the *lookahead* condition that makes Chandy–Misra-style
//! conservative parallel discrete-event simulation safe. This module is
//! the generic engine: it knows nothing about FIFOs or relay stations,
//! only about *shards* (independent [`Simulator`] instances, each with
//! its own timing wheel and delta ring, running on its own worker
//! thread) and *links* (directed bundles of cut nets whose every
//! possible change instant is bounded by a [`ClockSchedule`] plus an
//! exact launch delay).
//!
//! # Protocol
//!
//! Execution is round-lockstepped, which makes the merge deterministic
//! by construction (no outcome ever depends on wall-clock arrival
//! order):
//!
//! 1. Round 0: every shard runs to `t = 0` (flushing the unconditional
//!    elaboration-time init drives), harvests its export waveforms, and
//!    posts one message per out-link: the captured events plus a
//!    *grant* — a promise that no event with `t <` grant will ever be
//!    sent on that link (see [`ExportSpec::bound`]).
//! 2. Round `r`: every shard first blocks until the round-`r-1` message
//!    of **every** in-link has arrived, stages the received events, and
//!    computes its target `T = min(horizon, min over in-links of
//!    grant)`. It applies all staged events with `t ≤ T` in sorted
//!    `(time, link, pin)` order — a stable global numbering, never
//!    arrival order — runs to `T`, harvests, and posts
//!    `(events ≤ T, grant = bound(T))` on every out-link.
//! 3. A shard finishes when every in-link grant exceeds the horizon
//!    (every event `≤ horizon` is then in hand); it posts one final
//!    sentinel message (`grant = Time::MAX`) so downstream shards stop
//!    waiting on it, and returns its result.
//!
//! Each round strictly increases the globally minimal grant (a bound is
//! always `> T`), so the lockstep ring can never deadlock.
//!
//! # Why the frontier instant is safe
//!
//! A shard may process instant `T` *before* a peer's event stamped
//! exactly `T` arrives (the grant only excludes `t < T + 1` … `t < G`).
//! That late event is applied at local time `T` — the instant is
//! processed in two installments. This is sound here because cut nets
//! are *registered*: an import landing at `T` can only influence other
//! nets at `T + 1` or later (every gate and wire on the path has a
//! nonzero delay), and in particular can never alter an export already
//! harvested at `T` (exports launch from clock edges at least one full
//! launch delay earlier). The delta ring re-wakes the affected
//! components at the same timestamp and the net state converges to
//! exactly what a single simulator would have computed.
//!
//! # Determinism
//!
//! With lockstep rounds the sequence of run targets, the batching of
//! applied events, and the `(time, link, pin)` application order are all
//! pure functions of the shard graph — independent of thread scheduling.
//! Every queue push therefore gets the same sequence number on every
//! run, and the per-shard event streams are bit-for-bit reproducible.
//! `tests/sharded_determinism.rs` is the gate.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::SimError;
use crate::logic::Logic;
use crate::net::{DriverId, NetId};
use crate::sim::{SimStats, Simulator};
use crate::time::Time;

/// A periodic clock-edge schedule: rising edges at `phase + k·period`
/// for `k ≥ 1` (matching [`ClockGen`](crate::ClockGen), whose first
/// rising edge is one full period after the phase offset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockSchedule {
    /// Phase offset of the generator.
    pub phase: Time,
    /// Clock period (must be nonzero).
    pub period: Time,
}

impl ClockSchedule {
    /// The earliest instant strictly after `t` at which an edge of this
    /// schedule, delayed by exactly `delay`, can land: the smallest
    /// `phase + k·period + delay > t` with `k ≥ 1`.
    pub fn next_landing_after(&self, t: Time, delay: Time) -> Time {
        let first = self.phase + self.period + delay;
        if first > t {
            return first;
        }
        // k = floor((t - phase - delay) / period) + 1 gives the smallest
        // k with phase + k·period + delay > t (strict: an edge landing
        // exactly at t is *not* after t).
        let k = (t - self.phase - delay).as_ps() / self.period.as_ps() + 1;
        let landing = self.phase + self.period * k + delay;
        debug_assert!(landing > t && landing - self.period <= t);
        landing
    }
}

/// One way the nets of a link can change: a clock schedule plus the
/// exact (fixed) launch delay from its edges to the cut nets.
///
/// The *exactness* is what makes the bound sound for events already in
/// flight: a drive launched at edge `e` lands at precisely `e + delay`,
/// so the earliest landing strictly after the sender's simulated time
/// `T` covers both future edges *and* drives pending from edges `≤ T`.
/// A mere minimum delay would not — a pending drive with a larger
/// actual delay could land inside the granted window.
#[derive(Clone, Copy, Debug)]
pub struct LinkLaunch {
    /// Edge schedule of the launching clock.
    pub schedule: ClockSchedule,
    /// Exact edge-to-net delay.
    pub delay: Time,
}

/// A directed shard-to-shard connection.
#[derive(Clone, Copy, Debug)]
pub struct LinkDef {
    /// Sending shard index.
    pub from: usize,
    /// Receiving shard index.
    pub to: usize,
}

/// The sending half of one link: which local nets are exported, and
/// every launch that can move them. Declared by the shard's setup
/// closure; the engine traces the nets and ships their waveform deltas.
#[derive(Debug)]
pub struct ExportSpec {
    /// Global link index (into the `links` slice of [`run_sharded`]).
    pub link: usize,
    /// The cut nets, in the link's pin order (the receiver's
    /// [`ImportSpec::pins`] must use the same order).
    pub nets: Vec<NetId>,
    /// Every launch that can change any of `nets`. The grant for this
    /// link is the minimum landing over these.
    pub launches: Vec<LinkLaunch>,
}

impl ExportSpec {
    /// The conservative promise after simulating through `t`: no event
    /// on this link will ever be stamped earlier than the returned
    /// instant.
    pub fn bound(&self, t: Time) -> Time {
        self.launches
            .iter()
            .map(|l| l.schedule.next_landing_after(t, l.delay))
            .min()
            .unwrap_or(Time::MAX)
    }
}

/// The receiving half of one link: mirror-net drivers, index-aligned
/// with the sender's [`ExportSpec::nets`].
#[derive(Debug)]
pub struct ImportSpec {
    /// Global link index.
    pub link: usize,
    /// One `(driver, net)` pair per pin. Each mirror net must have this
    /// engine driver as its only driver.
    pub pins: Vec<(DriverId, NetId)>,
}

/// Everything a shard's setup closure tells the engine about its cuts.
#[derive(Debug, Default)]
pub struct ShardIo {
    /// Out-links this shard sends on.
    pub exports: Vec<ExportSpec>,
    /// In-links this shard receives on.
    pub imports: Vec<ImportSpec>,
}

/// What a setup closure returns: the shard's I/O declaration plus a
/// finalizer run after the horizon is reached (extract journals,
/// fingerprints, waveforms — anything `Send`).
pub struct ShardPlan<R> {
    /// Cut declaration.
    pub io: ShardIo,
    /// Runs on the worker thread after the shard reaches the horizon.
    pub finish: Box<dyn FnOnce(&mut Simulator) -> R>,
}

impl<R> std::fmt::Debug for ShardPlan<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPlan").field("io", &self.io).finish()
    }
}

/// One shard: a seed and a setup closure that builds the partition
/// inside a fresh [`Simulator`] *on the worker thread* (a `Simulator`
/// is not `Send` — it never crosses threads; only the setup closure and
/// the `R` result do).
pub struct ShardSpec<R> {
    /// RNG seed for this shard's simulator.
    pub seed: u64,
    /// Elaborates the partition and declares its cuts.
    #[allow(clippy::type_complexity)]
    pub setup: Box<dyn FnOnce(&mut Simulator) -> ShardPlan<R> + Send>,
}

impl<R> std::fmt::Debug for ShardSpec<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSpec")
            .field("seed", &self.seed)
            .finish()
    }
}

/// Per-shard execution counters, the sharded-mode extension of
/// [`SimStats`]. All values are cumulative over the shard's whole run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// The shard simulator's own kernel counters.
    pub sim: SimStats,
    /// Boundary events shipped out over all out-links.
    pub events_sent: u64,
    /// Boundary events received and applied from all in-links.
    pub events_received: u64,
    /// Messages posted (one per out-link per round, plus sentinels).
    pub messages_sent: u64,
    /// Messages that carried no events — pure lookahead grants. The
    /// null-message traffic of the Chandy–Misra protocol.
    pub null_messages: u64,
    /// Lockstep rounds executed.
    pub rounds: u64,
    /// Wall-clock time spent waiting on in-link messages (the
    /// conservative protocol's blocking cost).
    pub blocked: Duration,
    /// Wall-clock time spent actually simulating.
    pub busy: Duration,
}

/// One message on a link: the events captured in the sender's last
/// window plus its new grant.
#[derive(Debug)]
struct Msg {
    /// `(timestamp, pin index, value)`, time-sorted, final value per
    /// `(pin, timestamp)`.
    events: Vec<(Time, u32, Logic)>,
    /// No future event on this link will be stamped `< grant`.
    /// `Time::MAX` is the sender's final sentinel.
    grant: Time,
}

/// A bounded single-producer single-consumer mailbox for one link.
#[derive(Debug, Default)]
struct Mailbox {
    q: Mutex<VecDeque<Msg>>,
    cv: Condvar,
}

impl Mailbox {
    fn post(&self, msg: Msg) {
        self.q.lock().unwrap().push_back(msg);
        self.cv.notify_one();
    }

    /// Blocks until at least one message is available, then drains all.
    fn take_blocking(&self, blocked: &mut Duration) -> Vec<Msg> {
        let start = Instant::now();
        let mut q = self.q.lock().unwrap();
        while q.is_empty() {
            q = self.cv.wait(q).unwrap();
        }
        let msgs = q.drain(..).collect();
        *blocked += start.elapsed();
        msgs
    }
}

/// Runs `shards` to `horizon` as a conservative parallel simulation over
/// `links`, one worker thread per shard, and returns each shard's result
/// and counters in shard order.
///
/// A shard with no links at all bypasses the protocol entirely: one
/// plain [`Simulator::run_until`] call, so its [`SimStats`] are
/// *identical* to the unsharded path (this is the `--shards 1`
/// guarantee, pinned by `stats_match_pre_sharding_path` in
/// `tests/sharded_determinism.rs`).
///
/// # Errors
///
/// The first shard error (by shard index) is returned; all shards are
/// still joined first (a failing shard posts its sentinels so peers
/// never hang).
pub fn run_sharded<R: Send>(
    shards: Vec<ShardSpec<R>>,
    links: &[LinkDef],
    horizon: Time,
) -> Result<Vec<(R, ShardStats)>, SimError> {
    for (i, l) in links.iter().enumerate() {
        assert!(
            l.from < shards.len() && l.to < shards.len() && l.from != l.to,
            "link {i} connects invalid shards {l:?}"
        );
    }
    let mailboxes: Vec<Arc<Mailbox>> = links.iter().map(|_| Arc::default()).collect();

    let mut slots: Vec<Option<Result<(R, ShardStats), SimError>>> = Vec::new();
    slots.resize_with(shards.len(), || None);
    let slots = Mutex::new(slots);

    std::thread::scope(|scope| {
        for (index, spec) in shards.into_iter().enumerate() {
            let mailboxes = &mailboxes;
            let slots = &slots;
            scope.spawn(move || {
                let outcome = run_one_shard(index, spec, links, mailboxes, horizon);
                slots.lock().unwrap()[index] = Some(outcome);
            });
        }
    });

    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("every shard thread reports"))
        .collect()
}

/// The per-worker body: build, lockstep, finish.
fn run_one_shard<R>(
    index: usize,
    spec: ShardSpec<R>,
    links: &[LinkDef],
    mailboxes: &[Arc<Mailbox>],
    horizon: Time,
) -> Result<(R, ShardStats), SimError> {
    let mut stats = ShardStats::default();
    let busy_start = Instant::now();

    let mut sim = Simulator::new(spec.seed);
    let plan = (spec.setup)(&mut sim);
    let ShardIo { exports, imports } = plan.io;
    for e in &exports {
        assert_eq!(links[e.link].from, index, "export on a foreign link");
        assert!(
            !e.launches.is_empty(),
            "export link {} has no launches",
            e.link
        );
        for &n in &e.nets {
            sim.trace(n);
        }
    }
    for i in &imports {
        assert_eq!(links[i.link].to, index, "import on a foreign link");
    }

    // Run the protocol; post sentinels afterwards even on error, so a
    // failing shard never leaves its peers blocked on the mailbox.
    let result = lockstep(&mut sim, &exports, &imports, mailboxes, horizon, &mut stats);
    for e in &exports {
        stats.messages_sent += 1;
        mailboxes[e.link].post(Msg {
            events: Vec::new(),
            grant: Time::MAX,
        });
    }
    result?;

    let out = (plan.finish)(&mut sim);
    stats.sim = sim.stats();
    stats.busy = busy_start.elapsed() - stats.blocked;
    Ok((out, stats))
}

/// Per-export-net harvest cursor into the traced waveform.
#[derive(Clone, Copy, Default)]
struct Cursor(usize);

/// The lockstep rounds (everything between elaboration and finish).
fn lockstep(
    sim: &mut Simulator,
    exports: &[ExportSpec],
    imports: &[ImportSpec],
    mailboxes: &[Arc<Mailbox>],
    horizon: Time,
    stats: &mut ShardStats,
) -> Result<(), SimError> {
    // An unlinked shard *is* the unsharded path: counters stay identical.
    if exports.is_empty() && imports.is_empty() {
        stats.rounds = 1;
        return sim.run_until(horizon);
    }

    let mut cursors: Vec<Vec<Cursor>> = exports
        .iter()
        .map(|e| vec![Cursor::default(); e.nets.len()])
        .collect();
    // Per in-link state: last grant, staged (not yet applied) events,
    // and messages fetched from the mailbox but not yet consumed (a
    // fast sender may run several rounds ahead; consuming exactly one
    // message per round keeps this shard's target sequence a pure
    // function of the shard graph, independent of thread scheduling).
    let mut grants: Vec<Time> = vec![Time::from_ps(1); imports.len()];
    let mut staged: Vec<VecDeque<(Time, u32, Logic)>> =
        imports.iter().map(|_| VecDeque::new()).collect();
    let mut fetched: Vec<VecDeque<Msg>> = imports.iter().map(|_| VecDeque::new()).collect();

    // Round 0: flush elaboration-time init drives and announce bounds.
    sim.run_until(Time::ZERO)?;
    harvest_and_post(sim, exports, &mut cursors, mailboxes, Time::ZERO, stats);
    stats.rounds += 1;

    loop {
        // Rendezvous: exactly one message per in-link per round (a
        // sentinel link needs no further messages).
        for (j, imp) in imports.iter().enumerate() {
            if grants[j] == Time::MAX {
                continue;
            }
            if fetched[j].is_empty() {
                fetched[j].extend(mailboxes[imp.link].take_blocking(&mut stats.blocked));
            }
            let msg = fetched[j].pop_front().expect("take_blocking returns ≥ 1");
            debug_assert!(msg.grant >= grants[j], "grants must be monotone");
            grants[j] = msg.grant;
            staged[j].extend(msg.events);
        }

        let target = horizon.min(grants.iter().copied().min().unwrap_or(Time::MAX));

        // Apply every staged event now due, in stable (time, link, pin)
        // order — never arrival order. Within one link events are already
        // time-sorted; merging link-by-link through a global sort keeps
        // the numbering stable across any wall-clock interleaving.
        let mut due: Vec<(Time, usize, u32, Logic)> = Vec::new();
        for (j, buf) in staged.iter_mut().enumerate() {
            while buf.front().is_some_and(|&(t, _, _)| t <= target) {
                let (t, pin, v) = buf.pop_front().unwrap();
                due.push((t, j, pin, v));
            }
        }
        due.sort_by_key(|&(t, j, pin, _)| (t, j, pin));
        for (t, j, pin, v) in due {
            let (driver, net) = imports[j].pins[pin as usize];
            stats.events_received += 1;
            sim.drive_at(driver, net, v, t);
        }

        sim.run_until(target)?;
        harvest_and_post(sim, exports, &mut cursors, mailboxes, target, stats);
        stats.rounds += 1;

        // Done once every event ≤ horizon is guaranteed delivered.
        if grants.iter().all(|&g| g > horizon) {
            return Ok(());
        }
    }
}

/// Captures each export net's waveform deltas up to `t` (final value per
/// instant — the trace collapses same-instant bounces) and posts one
/// message per out-link with the new grant.
fn harvest_and_post(
    sim: &Simulator,
    exports: &[ExportSpec],
    cursors: &mut [Vec<Cursor>],
    mailboxes: &[Arc<Mailbox>],
    t: Time,
    stats: &mut ShardStats,
) {
    for (e, curs) in exports.iter().zip(cursors.iter_mut()) {
        let mut events: Vec<(Time, u32, Logic)> = Vec::new();
        for (pin, (&net, cur)) in e.nets.iter().zip(curs.iter_mut()).enumerate() {
            let pts = sim
                .waveform(net)
                .expect("export nets are traced by the engine")
                .points();
            while cur.0 < pts.len() && pts[cur.0].0 <= t {
                events.push((pts[cur.0].0, pin as u32, pts[cur.0].1));
                cur.0 += 1;
            }
        }
        events.sort_by_key(|&(time, pin, _)| (time, pin));
        stats.events_sent += events.len() as u64;
        stats.messages_sent += 1;
        if events.is_empty() {
            stats.null_messages += 1;
        }
        mailboxes[e.link].post(Msg {
            events,
            grant: e.bound(t),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockGen;
    use crate::component::{Component, Ctx};

    #[test]
    fn next_landing_is_strictly_after() {
        let s = ClockSchedule {
            phase: Time::from_ps(300),
            period: Time::from_ps(1_000),
        };
        let d = Time::from_ps(400);
        // First landing: phase + period + delay = 1700.
        assert_eq!(s.next_landing_after(Time::ZERO, d), Time::from_ps(1_700));
        assert_eq!(
            s.next_landing_after(Time::from_ps(1_699), d),
            Time::from_ps(1_700)
        );
        // Exactly at a landing: strictly-after means the *next* one.
        assert_eq!(
            s.next_landing_after(Time::from_ps(1_700), d),
            Time::from_ps(2_700)
        );
        assert_eq!(
            s.next_landing_after(Time::from_ps(10_000_000), d),
            Time::from_ps(10_000_700)
        );
    }

    /// A registered repeater: on each rising clock edge, drives its
    /// output to its input's value after `delay` — the minimal model of
    /// a cut net with an exact launch delay.
    struct EdgeReg {
        clk: NetId,
        d: NetId,
        q_drv: crate::net::DriverId,
        delay: Time,
        prev: Logic,
    }

    impl Component for EdgeReg {
        fn name(&self) -> &str {
            "edge_reg"
        }
        fn eval(&mut self, ctx: &mut Ctx<'_>) {
            let clk = ctx.get(self.clk);
            let rising = self.prev == Logic::L && clk == Logic::H;
            self.prev = clk;
            if rising {
                let v = ctx.get(self.d);
                ctx.drive(self.q_drv, v, self.delay);
            }
        }
    }

    fn spawn_edge_reg(sim: &mut Simulator, clk: NetId, d: NetId, q: NetId, delay: Time) {
        let q_drv = sim.driver(q);
        sim.add_component(
            Box::new(EdgeReg {
                clk,
                d,
                q_drv,
                delay,
                prev: Logic::X,
            }),
            &[clk],
        );
    }

    /// Two shards in a ring: each re-registers the other's output onto
    /// its own toggling source. The sharded run must observe exactly the
    /// single-simulator waveforms.
    #[test]
    fn two_shard_ring_matches_single_simulator() {
        let period = [Time::from_ps(1_000), Time::from_ps(1_300)];
        let phase = [Time::from_ps(0), Time::from_ps(450)];
        let delay = Time::from_ps(400);
        let horizon = Time::from_us(1);

        // Reference: both halves in one simulator.
        let reference: Vec<Vec<(Time, Logic)>> = {
            let mut sim = Simulator::new(7);
            let clk: Vec<NetId> = (0..2).map(|i| sim.net(format!("clk{i}"))).collect();
            for i in 0..2 {
                ClockGen::builder(period[i])
                    .phase(phase[i])
                    .spawn(&mut sim, clk[i]);
            }
            let q: Vec<NetId> = (0..2).map(|i| sim.net(format!("q{i}"))).collect();
            // Shard i's register samples the *other* shard's output.
            spawn_edge_reg(&mut sim, clk[0], q[1], q[0], delay);
            spawn_edge_reg(&mut sim, clk[1], q[0], q[1], delay);
            // Kick: an initial H on q1's side via a one-shot driver.
            let kick = sim.driver(q[1]);
            sim.drive_at(kick, q[1], Logic::H, Time::ZERO);
            for &n in &q {
                sim.trace(n);
            }
            sim.run_until(horizon).unwrap();
            q.iter()
                .map(|&n| sim.waveform(n).unwrap().points().to_vec())
                .collect()
        };

        // Sharded: one register per shard, the peer's output mirrored.
        let specs: Vec<ShardSpec<Vec<(Time, Logic)>>> = (0..2)
            .map(|i| {
                let other = 1 - i;
                ShardSpec {
                    seed: 7,
                    setup: Box::new(move |sim: &mut Simulator| {
                        let clk = sim.net(format!("clk{i}"));
                        ClockGen::builder(period[i]).phase(phase[i]).spawn(sim, clk);
                        let q = sim.net(format!("q{i}"));
                        let mirror = sim.net(format!("xlink.q{other}"));
                        let mirror_drv = sim.driver(mirror);
                        spawn_edge_reg(sim, clk, mirror, q, delay);
                        if i == 1 {
                            let kick = sim.driver(q);
                            sim.drive_at(kick, q, Logic::H, Time::ZERO);
                        }
                        sim.trace(q);
                        ShardPlan {
                            io: ShardIo {
                                // Link i carries shard i's q to the peer.
                                exports: vec![ExportSpec {
                                    link: i,
                                    nets: vec![q],
                                    launches: vec![LinkLaunch {
                                        schedule: ClockSchedule {
                                            phase: phase[i],
                                            period: period[i],
                                        },
                                        delay,
                                    }],
                                }],
                                imports: vec![ImportSpec {
                                    link: other,
                                    pins: vec![(mirror_drv, mirror)],
                                }],
                            },
                            finish: Box::new(move |sim: &mut Simulator| {
                                sim.waveform(q).unwrap().points().to_vec()
                            }),
                        }
                    }),
                }
            })
            .collect();
        let links = [LinkDef { from: 0, to: 1 }, LinkDef { from: 1, to: 0 }];
        let results = run_sharded(specs, &links, horizon).unwrap();

        for (i, (points, st)) in results.iter().enumerate() {
            assert_eq!(
                points, &reference[i],
                "shard {i} waveform diverged from the single simulator"
            );
            assert!(st.rounds > 2, "ring must take many lockstep rounds");
            assert!(
                st.messages_sent >= st.rounds,
                "one message per round per link"
            );
        }
        // The kick shard's H at t=0 crosses; both registers toggle, so
        // real traffic flows and not every message is a null message.
        let sent: u64 = results.iter().map(|(_, s)| s.events_sent).sum();
        assert!(sent > 2, "expected cross-shard traffic, got {sent} events");
    }

    /// A linkless "sharded" run is literally the plain path: identical
    /// kernel counters, same result.
    #[test]
    fn unlinked_shard_is_the_plain_path() {
        let horizon = Time::from_ns(500);
        let plain = {
            let mut sim = Simulator::new(3);
            let clk = sim.net("clk");
            ClockGen::spawn_simple(&mut sim, clk, Time::from_ps(977));
            sim.run_until(horizon).unwrap();
            (sim.toggles(clk), sim.stats())
        };
        let specs = vec![ShardSpec {
            seed: 3,
            setup: Box::new(move |sim: &mut Simulator| {
                let clk = sim.net("clk");
                ClockGen::spawn_simple(sim, clk, Time::from_ps(977));
                ShardPlan {
                    io: ShardIo::default(),
                    finish: Box::new(move |sim: &mut Simulator| sim.toggles(clk)),
                }
            }),
        }];
        let results = run_sharded(specs, &[], horizon).unwrap();
        assert_eq!(results[0].0, plain.0);
        assert_eq!(results[0].1.sim, plain.1, "kernel counters drifted");
        assert_eq!(results[0].1.null_messages, 0);
        assert_eq!(results[0].1.events_sent, 0);
    }
}
