//! The simulator: nets, drivers, components, the event loop.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::component::{Component, ComponentId, Ctx};
use crate::error::SimError;
use crate::event::{EventKind, EventQueue};
use crate::logic::{Logic, LogicVec};
use crate::net::{Driver, DriverId, Net, NetId, NetLabel};
use crate::probe::Waveform;
use crate::race::{RaceHazard, RaceHazardKind, RaceState};
use crate::time::Time;

/// What kind of timing rule was broken.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// Data input changed too close *before* a sampling clock edge.
    Setup,
    /// Data input changed too close *after* a sampling clock edge.
    Hold,
    /// Two drivers fought over a net with conflicting definite values.
    DriveConflict,
    /// A flip-flop went metastable (its data input moved inside the
    /// metastability window around the sampling edge).
    Metastability,
    /// A protocol checker observed an illegal interface sequence.
    Protocol,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Setup => "setup",
            ViolationKind::Hold => "hold",
            ViolationKind::DriveConflict => "drive-conflict",
            ViolationKind::Metastability => "metastability",
            ViolationKind::Protocol => "protocol",
        };
        f.write_str(s)
    }
}

/// A recorded timing/protocol violation.
///
/// Violations never abort the run; they accumulate on the simulator so
/// experiments can assert on them. The fmax measurement in `mtf-bench`
/// works by shrinking the clock period until the first [`Setup`]
/// (or data-corruption) report appears.
///
/// [`Setup`]: ViolationKind::Setup
#[derive(Clone, Debug)]
pub struct Violation {
    /// What rule was broken.
    pub kind: ViolationKind,
    /// When.
    pub time: Time,
    /// Reporting component instance name.
    pub source: String,
    /// Free-form details.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {}: {}",
            self.kind, self.source, self.time, self.message
        )
    }
}

/// Kernel counters, taken with [`Simulator::stats`]. Cheap to copy.
///
/// All values are cumulative since the simulator was constructed, and
/// they depend only on the *sequence* of pushes and pops — splitting one
/// `run_until(h)` into `run_until(t); run_until(h)` leaves every counter
/// unchanged. The sharded execution mode
/// ([`run_sharded`](crate::shard::run_sharded)) relies on exactly this:
/// its lockstep rounds slice a shard's run into many `run_until` windows,
/// and a shard with no cross-shard links reports counters identical to
/// the plain single-call path (pinned by `tests/sharded_determinism.rs`).
/// Per-shard totals plus the protocol's own counters (events exchanged,
/// null messages, blocked time) live in
/// [`ShardStats`](crate::shard::ShardStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events popped and dispatched by [`Simulator::run_until`] — both
    /// net-drive events and component wakes, across all calls.
    pub events_processed: u64,
    /// Highest number of events pending in the timing wheel (including
    /// its sorted overflow map) at once. The same-instant delta ring is
    /// *not* included — its high-water mark is `peak_delta_depth`.
    pub peak_queue_depth: usize,
    /// Wake requests absorbed into an already-queued, not-yet-delivered
    /// wake for the same component at the same instant (each one is a
    /// queue entry saved, not a lost evaluation).
    pub coalesced_wakes: u64,
    /// Events that entered the same-instant delta ring (as opposed to a
    /// future wheel slot).
    pub delta_pushes: u64,
    /// Highest delta-ring occupancy observed — the widest zero-delay
    /// cascade of the run.
    pub peak_delta_depth: usize,
    /// Coarse-level timing-wheel slot refills (each re-places one slot's
    /// events into finer levels).
    pub wheel_cascades: u64,
    /// Events that landed beyond the wheel span and were parked in the
    /// sorted overflow map until the wheel rotated far enough.
    pub overflow_events: u64,
    /// Evaluation passes executed by compiled-region engines (one per
    /// instant at which a compiled region had work). Zero under the pure
    /// event backend.
    pub compiled_edge_evals: u64,
    /// Individual gate/flop evaluations performed inline by compiled
    /// regions — work that the event backend would have paid a queue
    /// entry and a dynamic dispatch for. Zero under the event backend.
    pub compiled_gate_evals: u64,
}

/// Which execution strategy elaboration should install for purely
/// synchronous regions.
///
/// The seam is deliberately *above* the kernel: a compiled region is an
/// ordinary [`Component`] (one per design) that evaluates its levelized
/// gates inline and lands their outputs through
/// [`Ctx::commit_drive`](crate::Ctx::commit_drive), so both backends share
/// one net state, one queue, one RNG and one violation log — they can
/// coexist in a single run and must produce byte-identical observables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Every gate is its own component on the event wheel (the reference).
    #[default]
    Event,
    /// Acyclic synchronous regions run as rank-ordered straight-line code;
    /// the event wheel drives only async controllers, synchronizers,
    /// metastability models and mixed-timing boundary cells.
    Compiled,
}

impl Backend {
    /// The flag spelling, as accepted by [`FromStr`](std::str::FromStr).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Event => "event",
            Backend::Compiled => "compiled",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "event" => Ok(Backend::Event),
            "compiled" => Ok(Backend::Compiled),
            other => Err(format!(
                "unknown backend '{other}' (expected 'event' or 'compiled')"
            )),
        }
    }
}

/// The discrete-event simulator. See the [crate docs](crate) for the model.
pub struct Simulator {
    nets: Vec<Net>,
    drivers: Vec<Driver>,
    components: Vec<Option<Box<dyn Component>>>,
    queue: EventQueue,
    time: Time,
    rng: StdRng,
    violations: Vec<Violation>,
    waveforms: Vec<Option<Waveform>>,
    stop_requested: bool,
    /// Guard against zero-delay oscillation: maximum events processed at a
    /// single timestamp before the run aborts with
    /// [`SimError::DeltaOverflow`].
    pub max_events_per_instant: u64,
    events_processed: u64,
    /// Per-component wake-coalescing marker: the instant of a queued,
    /// not-yet-delivered wake for that component (`Time::MAX` when none).
    /// A wake request matching the marker is dropped — the queued wake
    /// already covers it.
    wake_pending: Vec<Time>,
    coalesced_wakes: u64,
    compiled_edge_evals: u64,
    compiled_gate_evals: u64,
    /// Delta-race sanitizer state; `None` (the default) costs one branch
    /// per read/drive. `RefCell` because reads are recorded from
    /// [`Ctx::get`], which takes `&self`.
    race: Option<RefCell<RaceState>>,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("time", &self.time)
            .field("nets", &self.nets.len())
            .field("drivers", &self.drivers.len())
            .field("components", &self.components.len())
            .field("pending_events", &self.queue.len())
            .field("violations", &self.violations.len())
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator with the given RNG seed.
    ///
    /// All stochastic behaviour (metastability resolution) flows from this
    /// seed, so identical seeds give identical runs.
    pub fn new(seed: u64) -> Self {
        Simulator {
            nets: Vec::new(),
            drivers: Vec::new(),
            components: Vec::new(),
            queue: EventQueue::default(),
            time: Time::ZERO,
            rng: StdRng::seed_from_u64(seed),
            violations: Vec::new(),
            waveforms: Vec::new(),
            stop_requested: false,
            max_events_per_instant: 2_000_000,
            events_processed: 0,
            wake_pending: Vec::new(),
            coalesced_wakes: 0,
            compiled_edge_evals: 0,
            compiled_gate_evals: 0,
            race: None,
        }
    }

    // ---- construction ----------------------------------------------------

    /// Creates a new net named `name` (names need not be unique; they label
    /// traces and violation reports).
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        self.add_net(NetLabel::Plain(name.into()))
    }

    /// Creates `width` nets named `name[0]`…`name[width-1]` (LSB first).
    ///
    /// The bits share one interned base name; the `name[i]` strings are
    /// rendered lazily on first [`Simulator::net_name`] lookup, so building
    /// wide datapaths does not allocate a formatted label per bit.
    pub fn bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        let base: Rc<str> = Rc::from(name);
        (0..width)
            .map(|i| {
                self.add_net(NetLabel::Bit {
                    base: Rc::clone(&base),
                    bit: i as u32,
                })
            })
            .collect()
    }

    fn add_net(&mut self, label: NetLabel) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net::new(label));
        self.waveforms.push(None);
        id
    }

    /// Attaches a new driver (initially contributing `Z`) to `net`.
    pub fn driver(&mut self, net: NetId) -> DriverId {
        let id = DriverId(self.drivers.len() as u32);
        self.drivers.push(Driver {
            net,
            value: Logic::Z,
            pending_seq: u64::MAX,
        });
        self.nets[net.0 as usize].drivers.push(id);
        id
    }

    /// Registers a component and subscribes it to `watch`ed nets. The
    /// component receives an initial wake at the current time so it can
    /// establish its outputs.
    pub fn add_component(&mut self, component: Box<dyn Component>, watch: &[NetId]) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components.push(Some(component));
        self.wake_pending.push(Time::MAX);
        for &n in watch {
            let w = &mut self.nets[n.0 as usize].watchers;
            if !w.contains(&id) {
                w.push(id);
            }
        }
        self.schedule_wake(id, self.time);
        id
    }

    /// Additionally subscribes an existing component to `net`.
    pub fn watch(&mut self, comp: ComponentId, net: NetId) {
        let w = &mut self.nets[net.0 as usize].watchers;
        if !w.contains(&comp) {
            w.push(comp);
        }
    }

    /// Removes a component from the simulation: its slot is emptied (any
    /// queued wake becomes a harmless no-op) and it is unsubscribed from
    /// every net, so future net changes stop generating wake events for
    /// it. Used by the compiled backend to supersede per-gate components
    /// with a region engine after elaboration; its drivers keep their
    /// last contribution.
    pub fn detach_component(&mut self, comp: ComponentId) {
        let idx = comp.0 as usize;
        self.components[idx] = None;
        for net in &mut self.nets {
            net.watchers.retain(|&w| w != comp);
        }
    }

    /// Enables waveform recording for `net` (see [`Simulator::waveform`]).
    pub fn trace(&mut self, net: NetId) {
        let idx = net.0 as usize;
        if !self.nets[idx].traced {
            self.nets[idx].traced = true;
            let mut wf = Waveform::new();
            wf.record(self.time, self.nets[idx].resolved);
            self.waveforms[idx] = Some(wf);
        }
    }

    /// Enables waveform recording for every net of a bus.
    pub fn trace_bus(&mut self, nets: &[NetId]) {
        for &n in nets {
            self.trace(n);
        }
    }

    // ---- inspection ------------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// Resolved value of `net`.
    pub fn value(&self, net: NetId) -> Logic {
        self.nets[net.0 as usize].resolved
    }

    /// Resolved value of a multi-bit bus (`nets[0]` = LSB).
    pub fn value_vec(&self, nets: &[NetId]) -> LogicVec {
        LogicVec::from_bits(&nets.iter().map(|&n| self.value(n)).collect::<Vec<_>>())
    }

    /// When `net` last changed resolved value.
    pub fn last_change(&self, net: NetId) -> Time {
        self.nets[net.0 as usize].last_change
    }

    /// How many times `net` has changed resolved value since construction.
    /// Always counted (no tracing needed); the raw material of
    /// dynamic-energy estimation (`mtf-timing`'s power module).
    pub fn toggles(&self, net: NetId) -> u64 {
        self.nets[net.0 as usize].toggles
    }

    /// Resets every net's toggle counter (e.g. after a warm-up phase, so an
    /// energy measurement covers only the steady state).
    pub fn reset_toggles(&mut self) {
        for n in &mut self.nets {
            n.toggles = 0;
        }
    }

    /// The name given to `net` at creation (bus-bit names are rendered on
    /// first lookup and cached).
    pub fn net_name(&self, net: NetId) -> &str {
        self.nets[net.0 as usize].name()
    }

    /// Number of nets created so far.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// The recorded waveform for `net`, if [`Simulator::trace`] was enabled.
    pub fn waveform(&self, net: NetId) -> Option<&Waveform> {
        self.waveforms[net.0 as usize].as_ref()
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations of one kind.
    pub fn violations_of(&self, kind: ViolationKind) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(move |v| v.kind == kind)
    }

    /// Discards recorded violations (e.g. those produced while a testbench
    /// initialises).
    pub fn clear_violations(&mut self) {
        self.violations.clear();
    }

    /// True once a component has called [`Ctx::request_stop`].
    pub fn stopped(&self) -> bool {
        self.stop_requested
    }

    /// Total number of events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Snapshot of the kernel counters (queue depths, delta-ring activity,
    /// wake coalescing). Used by the bench binaries to report how hard the
    /// scheduler worked for a given experiment.
    pub fn stats(&self) -> SimStats {
        let q = self.queue.stats();
        SimStats {
            events_processed: self.events_processed,
            peak_queue_depth: q.peak_depth,
            coalesced_wakes: self.coalesced_wakes,
            delta_pushes: q.delta_pushes,
            peak_delta_depth: q.peak_delta_depth,
            wheel_cascades: q.cascades,
            overflow_events: q.overflow_pushes,
            compiled_edge_evals: self.compiled_edge_evals,
            compiled_gate_evals: self.compiled_gate_evals,
        }
    }

    /// Number of drivers attached to `net`, behavioural testbench drivers
    /// included. The static lint (`mtf-lint`) uses this to tell a genuinely
    /// floating input apart from a port driven by a behavioural component
    /// the netlist cannot see.
    pub fn driver_count(&self, net: NetId) -> usize {
        self.nets[net.0 as usize].drivers.len()
    }

    /// Number of components watching `net` (see [`Simulator::watch`]).
    /// `mtf-lint` uses this so an output consumed only behaviourally is
    /// not reported as unconnected.
    pub fn watcher_count(&self, net: NetId) -> usize {
        self.nets[net.0 as usize].watchers.len()
    }

    // ---- delta-race sanitizer ---------------------------------------------

    /// Turns on the delta-race sanitizer (see [`crate::race`]). Purely
    /// passive: scheduling and waveforms are identical to a plain run.
    /// Idempotent; recorded hazards survive repeated calls.
    pub fn enable_race_sanitizer(&mut self) {
        if self.race.is_none() {
            self.race = Some(RefCell::new(RaceState::default()));
        }
    }

    /// All same-instant conflicts recorded so far (always empty unless
    /// [`Simulator::enable_race_sanitizer`] was called).
    pub fn race_hazards(&self) -> Vec<RaceHazard> {
        self.race
            .as_ref()
            .map(|r| r.borrow().hazards().to_vec())
            .unwrap_or_default()
    }

    /// Number of recorded hazards of one kind.
    pub fn race_hazard_count(&self, kind: RaceHazardKind) -> usize {
        self.race
            .as_ref()
            .map(|r| {
                r.borrow()
                    .hazards()
                    .iter()
                    .filter(|h| h.kind == kind)
                    .count()
            })
            .unwrap_or(0)
    }

    /// Records a component-level net read (called by [`Ctx::get`], hence
    /// `&self`). Only non-watching reads are kept: a watcher is re-woken
    /// when the net changes, so it can never act on a stale value.
    pub(crate) fn note_read(&self, comp: ComponentId, net: NetId) {
        if let Some(race) = &self.race {
            if self.nets[net.0 as usize].watchers.contains(&comp) {
                return;
            }
            race.borrow_mut().note_read(self.time, net.0, comp);
        }
    }

    // ---- scheduling (also used by `Ctx`) ----------------------------------

    /// Schedules `driver` to contribute `value` after `delay`, cancelling
    /// any still-pending earlier schedule on the same driver (inertial
    /// behaviour).
    pub(crate) fn drive_in(&mut self, driver: DriverId, value: Logic, delay: Time) {
        let t = self.time + delay;
        let stamp = self.queue.next_seq();
        let seq = self.queue.push(
            t,
            EventKind::Drive {
                driver,
                value,
                stamp,
            },
        );
        debug_assert_eq!(stamp, seq);
        self.drivers[driver.0 as usize].pending_seq = seq;
    }

    /// External (testbench-level) drive scheduling: contributes `value` on
    /// `driver` at absolute time `at` (clamped to now). Unlike component
    /// drives these are *transport*-delay events — they are never cancelled
    /// by later schedules, so a testbench can pre-program a whole stimulus
    /// sequence up front.
    pub fn drive_at(&mut self, driver: DriverId, net: NetId, value: Logic, at: Time) {
        debug_assert_eq!(
            self.drivers[driver.0 as usize].net, net,
            "drive_at: driver {driver:?} is attached to a different net than {net:?}"
        );
        let t = at.max(self.time);
        self.queue.push(
            t,
            EventKind::Drive {
                driver,
                value,
                stamp: u64::MAX,
            },
        );
    }

    /// Applies `value` on `driver` *immediately*, without a queue event —
    /// exactly the state transition an uncancellable drive event landing
    /// at the current instant would perform (value-equal skip, sanitizer
    /// note, net recomputation, watcher wakes). Compiled-region engines
    /// use this to land gate outputs whose delay has elapsed; because the
    /// net/driver/watcher state transition is identical to
    /// [`apply_drive`](Self::apply_drive)'s, observables cannot diverge
    /// from the event path.
    pub(crate) fn commit_drive(&mut self, driver: DriverId, value: Logic) {
        // An engine-managed driver never has kernel-queued drive events,
        // so there is no pending_seq to consult: mirror the external
        // (`stamp == u64::MAX`) path of `apply_drive`.
        let d = &mut self.drivers[driver.0 as usize];
        if d.value == value {
            return;
        }
        d.value = value;
        let net = d.net;
        if let Some(race) = &self.race {
            let mut st = race.borrow_mut();
            if let Some(prev) = st.note_write(self.time, net.0, driver) {
                let h = RaceHazard {
                    kind: RaceHazardKind::WriteWrite,
                    time: self.time,
                    net: self.nets[net.0 as usize].name().to_owned(),
                    detail: format!(
                        "drivers #{} and #{} both changed their contribution \
                         within one delta cycle",
                        prev.0, driver.0
                    ),
                };
                st.push(h);
            }
        }
        self.recompute_net(net);
    }

    pub(crate) fn schedule_wake(&mut self, comp: ComponentId, at: Time) {
        let at = at.max(self.time);
        let idx = comp.0 as usize;
        if self.wake_pending[idx] == at {
            // A wake for this component at this instant is already queued
            // and will run after every net update of the instant — this
            // request is covered by it.
            self.coalesced_wakes += 1;
            return;
        }
        self.wake_pending[idx] = at;
        self.queue.push(at, EventKind::Wake { comp });
    }

    // ---- event loop --------------------------------------------------------

    /// Runs until the queue is exhausted, `horizon` is reached, or a
    /// component requests a stop. On success the simulator's clock is
    /// `horizon` (or the stop instant).
    pub fn run_until(&mut self, horizon: Time) -> Result<(), SimError> {
        let mut events_this_instant: u64 = 0;
        let mut instant = self.time;
        loop {
            if self.stop_requested {
                return Ok(());
            }
            // Combined peek-and-pop: a single occupancy scan per instant,
            // and the cursor never advances past `horizon`.
            let Some(ev) = self.queue.pop_not_after(horizon) else {
                break;
            };
            if ev.time > instant {
                instant = ev.time;
                events_this_instant = 0;
            }
            events_this_instant += 1;
            self.events_processed += 1;
            if events_this_instant > self.max_events_per_instant {
                return Err(SimError::DeltaOverflow {
                    time: ev.time,
                    events: events_this_instant,
                });
            }
            self.time = ev.time;
            match ev.kind {
                EventKind::Drive {
                    driver,
                    value,
                    stamp,
                } => {
                    self.apply_drive(driver, value, stamp, ev.seq);
                }
                EventKind::Wake { comp } => {
                    // Retire the coalescing marker *before* evaluating, so a
                    // wake the component schedules for this same instant
                    // during eval (self-rewake) is queued, not absorbed.
                    let widx = comp.0 as usize;
                    if self.wake_pending[widx] == ev.time {
                        self.wake_pending[widx] = Time::MAX;
                    }
                    self.eval_component(comp);
                }
            }
        }
        if !self.stop_requested {
            self.time = horizon;
        }
        Ok(())
    }

    /// Runs for `span` past the current time.
    pub fn run_for(&mut self, span: Time) -> Result<(), SimError> {
        let horizon = self.time + span;
        self.run_until(horizon)
    }

    /// Re-arms a previously requested stop so the simulation can continue.
    pub fn clear_stop(&mut self) {
        self.stop_requested = false;
    }

    fn apply_drive(&mut self, driver: DriverId, value: Logic, stamp: u64, _seq: u64) {
        let d = &mut self.drivers[driver.0 as usize];
        // Cancellation: `stamp == u64::MAX` marks externally scheduled
        // drives (never cancelled); otherwise only the latest scheduled
        // drive for this driver may apply.
        if stamp != u64::MAX && d.pending_seq != stamp {
            return;
        }
        if d.value == value {
            return;
        }
        d.value = value;
        let net = d.net;
        if let Some(race) = &self.race {
            let mut st = race.borrow_mut();
            if let Some(prev) = st.note_write(self.time, net.0, driver) {
                let h = RaceHazard {
                    kind: RaceHazardKind::WriteWrite,
                    time: self.time,
                    net: self.nets[net.0 as usize].name().to_owned(),
                    detail: format!(
                        "drivers #{} and #{} both changed their contribution \
                         within one delta cycle",
                        prev.0, driver.0
                    ),
                };
                st.push(h);
            }
        }
        self.recompute_net(net);
    }

    fn recompute_net(&mut self, net: NetId) {
        let idx = net.0 as usize;
        // Single-driver fast path: most nets have exactly one driver, and
        // `resolve(Z, v) == v`, so the fold collapses to a load.
        let resolved = match self.nets[idx].drivers.as_slice() {
            [d] => self.drivers[d.0 as usize].value,
            ds => ds
                .iter()
                .map(|&d| self.drivers[d.0 as usize].value)
                .fold(Logic::Z, Logic::resolve),
        };
        let now = self.time;
        let n = &mut self.nets[idx];
        if resolved == n.resolved {
            return;
        }
        n.resolved = resolved;
        n.last_change = now;
        n.toggles += 1;
        if n.traced {
            if let Some(wf) = self.waveforms[idx].as_mut() {
                wf.record(now, resolved);
            }
        }
        if let Some(race) = &self.race {
            let mut st = race.borrow_mut();
            for c in st.take_stale_readers(now, net.0) {
                let who = self.components[c.0 as usize]
                    .as_ref()
                    .map(|b| b.name().to_owned())
                    .unwrap_or_else(|| format!("component#{}", c.0));
                let h = RaceHazard {
                    kind: RaceHazardKind::ReadThenWrite,
                    time: now,
                    net: self.nets[idx].name().to_owned(),
                    detail: format!(
                        "'{who}' read the net earlier this instant without \
                         watching it, then the resolved value changed to {resolved:?}"
                    ),
                };
                st.push(h);
            }
        }
        // Notify watchers via wake events at the current instant. Borrowing
        // the watcher list, the queue and the coalescing markers as disjoint
        // fields lets this iterate in place — no clone of the watcher Vec
        // per net change.
        let now = self.time;
        let (nets, queue, wake_pending, coalesced) = (
            &self.nets,
            &mut self.queue,
            &mut self.wake_pending,
            &mut self.coalesced_wakes,
        );
        for &w in &nets[idx].watchers {
            let widx = w.0 as usize;
            if wake_pending[widx] == now {
                *coalesced += 1;
                continue;
            }
            wake_pending[widx] = now;
            queue.push(now, EventKind::Wake { comp: w });
        }
    }

    fn eval_component(&mut self, comp: ComponentId) {
        let idx = comp.0 as usize;
        let Some(mut c) = self.components[idx].take() else {
            // Re-entrant wake while the component is mid-eval cannot happen
            // (eval never re-enters the loop), but a stale duplicate wake for
            // a removed component is harmless.
            return;
        };
        {
            let mut ctx = Ctx {
                sim: self,
                me: comp,
            };
            c.eval(&mut ctx);
        }
        self.components[idx] = Some(c);
    }

    // ---- services for `Ctx` ------------------------------------------------

    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    pub(crate) fn record_violation(&mut self, v: Violation) {
        self.violations.push(v);
    }

    pub(crate) fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    pub(crate) fn note_compiled_pass(&mut self, gate_evals: u64) {
        self.compiled_edge_evals += 1;
        self.compiled_gate_evals += gate_evals;
    }
}
