//! The event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::component::ComponentId;
use crate::logic::Logic;
use crate::net::DriverId;
use crate::time::Time;

#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    /// Apply a driver contribution scheduled earlier. `stamp` must still
    /// match the driver's `pending_seq`, otherwise the event was cancelled.
    Drive {
        driver: DriverId,
        value: Logic,
        stamp: u64,
    },
    /// Re-evaluate a component (net change notification or self-wake).
    Wake { comp: ComponentId },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub time: Time,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest*
    /// (time, seq) first. Ties on time break on insertion order, which keeps
    /// same-timestamp processing deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// The sequence number the next `push` will assign; lets callers embed
    /// an event's own seq inside it (drive cancellation stamps).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    pub fn push(&mut self, time: Time, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
        seq
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::default();
        q.push(Time::from_ns(5), EventKind::Wake { comp: ComponentId(0) });
        q.push(Time::from_ns(1), EventKind::Wake { comp: ComponentId(1) });
        q.push(Time::from_ns(1), EventKind::Wake { comp: ComponentId(2) });
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(a.time, Time::from_ns(1));
        assert!(matches!(a.kind, EventKind::Wake { comp: ComponentId(1) }));
        assert_eq!(b.time, Time::from_ns(1));
        assert!(matches!(b.kind, EventKind::Wake { comp: ComponentId(2) }));
        assert_eq!(c.time, Time::from_ns(5));
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::default();
        assert_eq!(q.len(), 0);
        q.push(Time::ZERO, EventKind::Wake { comp: ComponentId(0) });
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
    }
}
