//! The event queue: a hierarchical timing wheel fronted by a same-instant
//! delta ring.
//!
//! The kernel's hot path is the zero-delay cascade: a net toggles, its
//! watchers are woken *at the same instant*, their drives resolve more nets
//! at the same instant, and so on. A binary heap pays `O(log n)` per push
//! and pop for every one of those events; the structure below makes them
//! `O(1)` by keeping all events at the current instant in a FIFO ring
//! (`ready`), while future events go into a timing wheel:
//!
//! * a **near wheel** of 4096 slots at exact 1 ps resolution (one slot =
//!   one timestamp), with a two-level occupancy bitmap so the next
//!   occupied slot is found in two `trailing_zeros` instructions — gate
//!   delays (a few hundred ps) land here directly;
//! * two coarser levels of 64 slots each (4096 ps and 2¹⁸ ps granules)
//!   covering 2²⁴ ps ≈ 16.7 µs ahead of the cursor — clock periods land
//!   here and are re-placed into the near wheel once per occupied granule;
//! * a sorted **overflow** map for anything beyond the wheel span.
//!
//! ## Ordering invariant
//!
//! Pops come out in exactly `(time, seq)` order — identical to the
//! `BinaryHeap` implementation this replaced, so waveforms, violation logs
//! and RNG draws are bit-for-bit unchanged. The argument:
//!
//! * `seq` is a global monotonic counter, so FIFO insertion order within
//!   any one container *is* seq order.
//! * A near-wheel slot holds one exact timestamp, so a slot drains in seq
//!   order.
//! * Coarse slots hold a whole granule of timestamps in push order; on
//!   refill they are re-placed one by one, which preserves relative order
//!   per destination slot — and any *later* push into those slots carries
//!   a larger seq, so appending keeps every slot sorted by seq.
//! * The wheel cursor (`cur`) only advances inside [`EventQueue::pop`], and
//!   the simulator never schedules into the past (`t ≥ now ≥ cur`), so an
//!   event pushed at the current instant lands in `ready` *behind* every
//!   event already staged there — again seq order.
//! * Every level's slots partition an *aligned block* of the level above
//!   (no wrap-around modulo arithmetic), and classification uses
//!   `t XOR cur`: a level holds exactly the events that share the cursor's
//!   enclosing block at the next-coarser granularity. Hence the lowest
//!   occupied slot of the lowest occupied level is the global minimum.
//! * Overflow keys always lie in a later 2²⁴ ps block than `cur` (pushes
//!   within the cursor's block go to the wheel), and a whole block is
//!   migrated into the wheel the moment the cursor enters it, before any
//!   newer push could land next to the migrated events.
//!
//! These properties are exercised against a reference binary-heap model by
//! the tests at the bottom of this file (a seeded interleaving test that
//! runs everywhere, plus the shrinking-capable `proptest` version in
//! `src/queue_props.rs`).

use std::cmp::Ordering;
use std::collections::BTreeMap;

use crate::component::ComponentId;
use crate::logic::Logic;
use crate::net::DriverId;
use crate::time::Time;

#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    /// Apply a driver contribution scheduled earlier. `stamp` must still
    /// match the driver's `pending_seq`, otherwise the event was cancelled.
    Drive {
        driver: DriverId,
        value: Logic,
        stamp: u64,
    },
    /// Re-evaluate a component (net change notification or self-wake).
    Wake { comp: ComponentId },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub time: Time,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Reversed so that a max-heap pops the *earliest* (time, seq) first.
    /// Kept for the reference-model equivalence tests.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Near wheel: 2¹² exact-picosecond slots.
const NEAR_BITS: u32 = 12;
const NEAR_SLOTS: usize = 1 << NEAR_BITS;
const NEAR_MASK: u64 = NEAR_SLOTS as u64 - 1;
/// Coarse levels: 64 slots each.
const COARSE_BITS: u32 = 6;
const COARSE_SLOTS: usize = 1 << COARSE_BITS;
const COARSE_MASK: u64 = COARSE_SLOTS as u64 - 1;
const MID_SHIFT: u32 = NEAR_BITS; // granule 4096 ps
const FAR_SHIFT: u32 = NEAR_BITS + COARSE_BITS; // granule 2¹⁸ ps
/// Total wheel span: 2²⁴ ps ≈ 16.7 µs.
const SPAN_BITS: u32 = NEAR_BITS + 2 * COARSE_BITS;

/// Counters the queue keeps about itself; surfaced through
/// [`Simulator::stats`](crate::Simulator::stats).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct QueueStats {
    pub peak_depth: usize,
    pub delta_pushes: u64,
    pub peak_delta_depth: usize,
    pub cascades: u64,
    pub overflow_pushes: u64,
}

pub(crate) struct EventQueue {
    /// Events at exactly the current instant (`cur`), in seq order: the
    /// delta ring. Zero-delay scheduling and popping are O(1); the ring is
    /// a flat `Vec` with a consume cursor (`ready_head`), reset to empty
    /// once drained, which is cheaper than a `VecDeque`'s wrap arithmetic
    /// on this all-hot path.
    ready: Vec<Event>,
    ready_head: usize,
    /// Near wheel: slot `t & NEAR_MASK` holds exactly timestamp `t` for
    /// `t` in the cursor's 4096 ps block.
    near: Vec<Vec<Event>>,
    /// Two-level occupancy bitmap over `near`: bit `w` of `near_summary`
    /// says word `near_words[w]` is non-zero.
    near_words: [u64; NEAR_SLOTS / 64],
    near_summary: u64,
    mid: [Vec<Event>; COARSE_SLOTS],
    mid_occ: u64,
    far: [Vec<Event>; COARSE_SLOTS],
    far_occ: u64,
    /// Events beyond the wheel span, keyed by exact timestamp (ps). Each
    /// bucket is in push (= seq) order.
    overflow: BTreeMap<u64, Vec<Event>>,
    /// Recycled buffer for coarse-slot refills (avoids an alloc/free pair
    /// per cascade).
    scratch: Vec<Event>,
    /// The wheel cursor in ps: the timestamp of the events in `ready`, and
    /// a lower bound on every queued event. Advances only in `pop`.
    cur: u64,
    len: usize,
    next_seq: u64,
    stats: QueueStats,
}

impl std::fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("cur_ps", &self.cur)
            .field("ready", &(self.ready.len() - self.ready_head))
            .field("overflow_keys", &self.overflow.len())
            .finish()
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            ready: Vec::new(),
            ready_head: 0,
            near: (0..NEAR_SLOTS).map(|_| Vec::new()).collect(),
            near_words: [0; NEAR_SLOTS / 64],
            near_summary: 0,
            mid: std::array::from_fn(|_| Vec::new()),
            mid_occ: 0,
            far: std::array::from_fn(|_| Vec::new()),
            far_occ: 0,
            overflow: BTreeMap::new(),
            scratch: Vec::new(),
            cur: 0,
            len: 0,
            next_seq: 0,
            stats: QueueStats::default(),
        }
    }
}

impl EventQueue {
    /// The sequence number the next `push` will assign; lets callers embed
    /// an event's own seq inside it (drive cancellation stamps).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    pub fn push(&mut self, time: Time, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.len > self.stats.peak_depth {
            self.stats.peak_depth = self.len;
        }
        self.place(Event { time, seq, kind });
        seq
    }

    /// Routes an event into the delta ring, a wheel slot, or overflow,
    /// relative to the current cursor.
    fn place(&mut self, ev: Event) {
        let t = ev.time.as_ps();
        if t <= self.cur {
            // The simulator never schedules into the past; anything at the
            // current instant joins the delta ring in seq order.
            debug_assert!(t == self.cur, "event scheduled before queue cursor");
            self.stats.delta_pushes += 1;
            self.ready.push(ev);
            let depth = self.ready.len() - self.ready_head;
            if depth > self.stats.peak_delta_depth {
                self.stats.peak_delta_depth = depth;
            }
            return;
        }
        let diff = t ^ self.cur;
        if diff < 1 << NEAR_BITS {
            let s = (t & NEAR_MASK) as usize;
            self.near[s].push(ev);
            self.near_words[s >> 6] |= 1u64 << (s & 63);
            self.near_summary |= 1u64 << (s >> 6);
        } else if diff < 1 << FAR_SHIFT {
            let s = ((t >> MID_SHIFT) & COARSE_MASK) as usize;
            self.mid[s].push(ev);
            self.mid_occ |= 1u64 << s;
        } else if diff < 1 << SPAN_BITS {
            let s = ((t >> FAR_SHIFT) & COARSE_MASK) as usize;
            self.far[s].push(ev);
            self.far_occ |= 1u64 << s;
        } else {
            self.stats.overflow_pushes += 1;
            self.overflow.entry(t).or_default().push(ev);
        }
    }

    /// Earliest queued time without disturbing the wheel. The event loop
    /// itself uses the fused [`EventQueue::pop_not_after`]; this stays for
    /// diagnostics and the reference-model tests.
    #[cfg(test)]
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(ev) = self.ready.get(self.ready_head) {
            return Some(ev.time);
        }
        if self.len == 0 {
            return None;
        }
        if self.near_summary != 0 {
            let w = self.near_summary.trailing_zeros() as usize;
            let b = self.near_words[w].trailing_zeros() as usize;
            let slot = ((w << 6) | b) as u64;
            return Some(Time::from_ps((self.cur & !NEAR_MASK) + slot));
        }
        // Within a coarse slot, events are in seq (not time) order; scan
        // for the minimum. Amortized: runs at most once per refill.
        if self.mid_occ != 0 {
            let s = self.mid_occ.trailing_zeros() as usize;
            return self.mid[s].iter().map(|e| e.time).min();
        }
        if self.far_occ != 0 {
            let s = self.far_occ.trailing_zeros() as usize;
            return self.far[s].iter().map(|e| e.time).min();
        }
        self.overflow.keys().next().map(|&ps| Time::from_ps(ps))
    }

    /// Unconditional pop; equivalent to `pop_not_after(Time::MAX)`.
    #[cfg(test)]
    pub fn pop(&mut self) -> Option<Event> {
        self.pop_not_after(Time::MAX)
    }

    /// Pops the earliest event if its time is ≤ `horizon`; otherwise leaves
    /// the queue untouched (the cursor never advances past an event the
    /// caller is not ready to consume, so later pushes at ≤ `horizon` stay
    /// legal). This is the event loop's primary operation: it replaces a
    /// `peek_time` + `pop` pair and performs a single occupancy scan per
    /// instant, with a fast path handing a lone slot resident straight to
    /// the caller without staging through the delta ring.
    pub fn pop_not_after(&mut self, horizon: Time) -> Option<Event> {
        loop {
            if let Some(&ev) = self.ready.get(self.ready_head) {
                if ev.time > horizon {
                    return None;
                }
                self.ready_head += 1;
                if self.ready_head == self.ready.len() {
                    self.ready.clear();
                    self.ready_head = 0;
                }
                self.len -= 1;
                return Some(ev);
            }
            if self.len == 0 {
                return None;
            }
            if self.near_summary != 0 {
                let w = self.near_summary.trailing_zeros() as usize;
                let b = self.near_words[w].trailing_zeros() as usize;
                let s = (w << 6) | b;
                let t = Time::from_ps((self.cur & !NEAR_MASK) + s as u64);
                if t > horizon {
                    return None;
                }
                debug_assert!(t.as_ps() > self.cur);
                self.cur = t.as_ps();
                self.near_words[w] &= !(1u64 << b);
                if self.near_words[w] == 0 {
                    self.near_summary &= !(1u64 << w);
                }
                let bucket = &mut self.near[s];
                if bucket.len() == 1 {
                    // Lone event at this instant: skip the delta ring.
                    self.len -= 1;
                    return bucket.pop();
                }
                self.stats.delta_pushes += bucket.len() as u64;
                self.ready.append(bucket);
                let depth = self.ready.len() - self.ready_head;
                if depth > self.stats.peak_delta_depth {
                    self.stats.peak_delta_depth = depth;
                }
                continue;
            }
            // Coarse levels: check the slot's earliest event against the
            // horizon *before* moving the cursor into the granule, so an
            // out-of-horizon refill never strands the cursor ahead of a
            // later legal push.
            if self.mid_occ != 0 {
                let s = self.mid_occ.trailing_zeros() as usize;
                let min = self.mid[s].iter().map(|e| e.time).min().expect("occupied");
                if min > horizon {
                    return None;
                }
                self.mid_occ &= !(1u64 << s);
                let granule_mask = (1u64 << FAR_SHIFT) - 1;
                self.cur = (self.cur & !granule_mask) + ((s as u64) << MID_SHIFT);
                self.refill(s, true);
                continue;
            }
            if self.far_occ != 0 {
                let s = self.far_occ.trailing_zeros() as usize;
                let min = self.far[s].iter().map(|e| e.time).min().expect("occupied");
                if min > horizon {
                    return None;
                }
                self.far_occ &= !(1u64 << s);
                let granule_mask = (1u64 << SPAN_BITS) - 1;
                self.cur = (self.cur & !granule_mask) + ((s as u64) << FAR_SHIFT);
                self.refill(s, false);
                continue;
            }
            // Wheel empty: enter the overflow's first block and migrate
            // every key of that block into the wheel at once, so later
            // same-block pushes (which now resolve against the new cursor)
            // append *behind* these older events.
            let first = *self
                .overflow
                .keys()
                .next()
                .expect("len > 0 but no event found");
            if Time::from_ps(first) > horizon {
                return None;
            }
            debug_assert!(first >> SPAN_BITS > self.cur >> SPAN_BITS);
            self.cur = first;
            let block = first >> SPAN_BITS;
            while let Some((&k, _)) = self.overflow.iter().next() {
                if k >> SPAN_BITS != block {
                    break;
                }
                let bucket = self.overflow.remove(&k).expect("key just observed");
                for ev in bucket {
                    self.place(ev);
                }
            }
            // `ready` now holds the events at `first`.
            debug_assert!(self.ready.len() > self.ready_head);
        }
    }

    /// Re-places one coarse slot's events after the cursor moved to the
    /// granule start, recycling `scratch` so no allocation happens per
    /// cascade (the drained slot inherits the previous scratch buffer's
    /// capacity and vice versa).
    fn refill(&mut self, slot: usize, from_mid: bool) {
        self.stats.cascades += 1;
        let mut scratch = std::mem::take(&mut self.scratch);
        let src = if from_mid {
            &mut self.mid[slot]
        } else {
            &mut self.far[slot]
        };
        std::mem::swap(&mut scratch, src);
        for ev in scratch.drain(..) {
            debug_assert!(ev.time.as_ps() >= self.cur);
            self.place(ev);
        }
        self.scratch = scratch;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::default();
        q.push(
            Time::from_ns(5),
            EventKind::Wake {
                comp: ComponentId(0),
            },
        );
        q.push(
            Time::from_ns(1),
            EventKind::Wake {
                comp: ComponentId(1),
            },
        );
        q.push(
            Time::from_ns(1),
            EventKind::Wake {
                comp: ComponentId(2),
            },
        );
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(a.time, Time::from_ns(1));
        assert!(matches!(
            a.kind,
            EventKind::Wake {
                comp: ComponentId(1)
            }
        ));
        assert_eq!(b.time, Time::from_ns(1));
        assert!(matches!(
            b.kind,
            EventKind::Wake {
                comp: ComponentId(2)
            }
        ));
        assert_eq!(c.time, Time::from_ns(5));
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::default();
        assert_eq!(q.len(), 0);
        q.push(
            Time::ZERO,
            EventKind::Wake {
                comp: ComponentId(0),
            },
        );
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn same_instant_fifo_behind_wheel_resident_events() {
        // Two events pre-scheduled at t=100; after popping the first, a
        // push at t=100 (zero-delay) must come out *after* the second
        // pre-scheduled one (it has a larger seq).
        let mut q = EventQueue::default();
        q.push(
            Time::from_ps(100),
            EventKind::Wake {
                comp: ComponentId(0),
            },
        );
        q.push(
            Time::from_ps(100),
            EventKind::Wake {
                comp: ComponentId(1),
            },
        );
        let first = q.pop().unwrap();
        assert!(matches!(
            first.kind,
            EventKind::Wake {
                comp: ComponentId(0)
            }
        ));
        q.push(
            Time::from_ps(100),
            EventKind::Wake {
                comp: ComponentId(2),
            },
        );
        let second = q.pop().unwrap();
        assert!(matches!(
            second.kind,
            EventKind::Wake {
                comp: ComponentId(1)
            }
        ));
        let third = q.pop().unwrap();
        assert!(matches!(
            third.kind,
            EventKind::Wake {
                comp: ComponentId(2)
            }
        ));
    }

    #[test]
    fn far_future_overflow_orders_with_wheel() {
        let mut q = EventQueue::default();
        // Far beyond the 16.7 µs wheel span.
        q.push(
            Time::from_us(100),
            EventKind::Wake {
                comp: ComponentId(0),
            },
        );
        q.push(
            Time::from_ns(1),
            EventKind::Wake {
                comp: ComponentId(1),
            },
        );
        q.push(
            Time::from_us(100),
            EventKind::Wake {
                comp: ComponentId(2),
            },
        );
        q.push(
            Time::from_us(99),
            EventKind::Wake {
                comp: ComponentId(3),
            },
        );
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Wake { comp } => comp.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    /// Drives the wheel and a reference `BinaryHeap` through the same
    /// pseudo-random push/pop interleaving and asserts identical pop
    /// order. Seeded LCG, no external crates, so it runs everywhere;
    /// `queue_matches_reference_heap` in `src/queue_props.rs` is the
    /// shrinking-capable proptest version.
    fn interleaving_against_reference(seed: u64, ops: usize) {
        let mut lcg = seed.wrapping_mul(2).wrapping_add(1);
        let mut rand = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 11
        };
        let mut q = EventQueue::default();
        let mut reference: BinaryHeap<Event> = BinaryHeap::new();
        let mut now = 0u64; // last popped time: pushes never go below this
        let mut next_id = 0u32;
        for _ in 0..ops {
            let r = rand();
            if r % 4 != 3 {
                // Push at `now + delta`, with deltas exercising every tier:
                // same-instant, near wheel, both coarse levels, overflow.
                let delta = match r % 7 {
                    0 => 0,
                    1 => rand() % 64,
                    2 => rand() % 4_096,
                    3 => rand() % 262_144,
                    4 => rand() % (1 << 24),
                    _ => rand() % (1 << 30),
                };
                let t = Time::from_ps(now + delta);
                let kind = EventKind::Wake {
                    comp: ComponentId(next_id),
                };
                next_id += 1;
                let seq = q.push(t, kind);
                reference.push(Event { time: t, seq, kind });
            } else {
                let got = q.pop();
                let want = reference.pop();
                match (got, want) {
                    (None, None) => {}
                    (Some(g), Some(w)) => {
                        assert_eq!((g.time, g.seq), (w.time, w.seq));
                        now = g.time.as_ps();
                    }
                    (g, w) => panic!("emptiness mismatch: {g:?} vs {w:?}"),
                }
            }
        }
        // Drain both completely.
        loop {
            match (q.pop(), reference.pop()) {
                (None, None) => break,
                (Some(g), Some(w)) => assert_eq!((g.time, g.seq), (w.time, w.seq)),
                (g, w) => panic!("emptiness mismatch: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn matches_reference_heap_across_interleavings() {
        for seed in 0..50 {
            interleaving_against_reference(seed, 2_000);
        }
    }

    #[test]
    fn same_instant_burst_pops_fifo() {
        let mut q = EventQueue::default();
        for i in 0..100u32 {
            q.push(
                Time::from_ns(7),
                EventKind::Wake {
                    comp: ComponentId(i),
                },
            );
        }
        for i in 0..100u32 {
            let e = q.pop().unwrap();
            match e.kind {
                EventKind::Wake { comp } => assert_eq!(comp.0, i),
                _ => unreachable!(),
            }
        }
    }
}
