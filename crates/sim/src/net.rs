//! Nets (wires) and drivers.

use std::cell::OnceCell;
use std::rc::Rc;

use crate::logic::Logic;
use crate::time::Time;

/// Identifies a net (a wire, possibly with several drivers) in a
/// [`Simulator`](crate::Simulator).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index of this net; stable for the lifetime of the simulator.
    /// Used by `mtf-timing` to align its netlist graph with the simulator.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a raw index (for tools that iterate nets by
    /// position; the index must come from [`NetId::index`] or be below
    /// [`Simulator::net_count`](crate::Simulator::net_count)).
    pub fn from_index(i: usize) -> Self {
        NetId(i as u32)
    }
}

/// Identifies one driver (output pin) attached to a net.
///
/// Each driver contributes a [`Logic`] level; the net's resolved value is
/// the [`Logic::resolve`] fold of all contributions. A driver that has never
/// been driven contributes `Z`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DriverId(pub(crate) u32);

/// How a net is labelled. Bus bits share one `Rc<str>` base name and
/// render `base[i]` lazily, so building a wide datapath does not allocate a
/// formatted `String` per bit.
#[derive(Debug, Clone)]
pub(crate) enum NetLabel {
    Plain(String),
    Bit { base: Rc<str>, bit: u32 },
}

#[derive(Debug)]
pub(crate) struct Net {
    label: NetLabel,
    /// Rendered form of a `Bit` label, materialised on first request.
    name_cache: OnceCell<String>,
    pub drivers: Vec<DriverId>,
    pub watchers: Vec<crate::component::ComponentId>,
    pub resolved: Logic,
    pub last_change: Time,
    pub traced: bool,
    /// Number of resolved-value changes since construction (the raw
    /// material of dynamic-energy estimation).
    pub toggles: u64,
}

impl Net {
    pub(crate) fn new(label: NetLabel) -> Self {
        Net {
            label,
            name_cache: OnceCell::new(),
            drivers: Vec::new(),
            watchers: Vec::new(),
            resolved: Logic::Z,
            last_change: Time::ZERO,
            traced: false,
            toggles: 0,
        }
    }

    pub(crate) fn name(&self) -> &str {
        match &self.label {
            NetLabel::Plain(s) => s,
            NetLabel::Bit { base, bit } => self.name_cache.get_or_init(|| format!("{base}[{bit}]")),
        }
    }
}

#[derive(Debug)]
pub(crate) struct Driver {
    pub net: NetId,
    pub value: Logic,
    /// Sequence number of the most recently scheduled drive event for this
    /// driver; an event whose stamp does not match is stale (cancelled by a
    /// later schedule — inertial-delay behaviour).
    pub pending_seq: u64,
}
