//! Value-change-dump (VCD) export and ASCII waveform rendering.
//!
//! Experiment E6 regenerates the paper's Fig. 3 protocol waveforms from
//! simulation; this module renders traced nets either as a standard VCD
//! file (loadable in GTKWave & co.) or as a compact ASCII timing diagram
//! for terminal output.

use crate::logic::Logic;
use crate::probe::Probe;
use crate::sim::Simulator;
use crate::time::Time;

/// Renders the recorded waveforms of `probes` as a VCD document.
///
/// Every net referenced by a probe must have been traced
/// ([`Simulator::trace`]) *before* the activity of interest, otherwise its
/// history is missing and this function panics.
///
/// Scalars dump as single-bit variables; buses as `wire` vectors.
pub fn render_vcd(sim: &Simulator, probes: &[Probe]) -> String {
    let mut out = String::new();
    out.push_str("$date\n  mtf-sim\n$end\n");
    out.push_str("$version\n  mtf-sim vcd writer\n$end\n");
    out.push_str("$timescale\n  1ps\n$end\n");
    out.push_str("$scope module top $end\n");
    let ids: Vec<String> = (0..probes.len()).map(short_id).collect();
    for (p, id) in probes.iter().zip(&ids) {
        let w = p.width();
        if w == 1 {
            out.push_str(&format!("$var wire 1 {id} {} $end\n", sanitize(&p.label)));
        } else {
            out.push_str(&format!(
                "$var wire {w} {id} {} [{}:0] $end\n",
                sanitize(&p.label),
                w - 1
            ));
        }
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Collect all change instants across all probed nets.
    let mut times: Vec<Time> = Vec::new();
    for p in probes {
        for &n in &p.nets {
            let wf = sim
                .waveform(n)
                .unwrap_or_else(|| panic!("net {} was not traced", sim.net_name(n)));
            times.extend(wf.points().iter().map(|&(t, _)| t));
        }
    }
    times.sort_unstable();
    times.dedup();

    let mut last: Vec<Option<String>> = vec![None; probes.len()];
    for &t in &times {
        let mut stanza = String::new();
        for ((p, id), prev) in probes.iter().zip(&ids).zip(last.iter_mut()) {
            let cur = probe_value_str(sim, p, t);
            if prev.as_deref() != Some(cur.as_str()) {
                if p.width() == 1 {
                    stanza.push_str(&format!("{cur}{id}\n"));
                } else {
                    stanza.push_str(&format!("b{cur} {id}\n"));
                }
                *prev = Some(cur);
            }
        }
        if !stanza.is_empty() {
            out.push_str(&format!("#{}\n{stanza}", t.as_ps()));
        }
    }
    out
}

/// Renders an ASCII timing diagram of `probes` between `from` and `to`,
/// sampled every `step`. Scalar signals render as `_`, `#` (high), `x`,
/// `z`; buses render their hexadecimal value at each change.
pub fn render_ascii(sim: &Simulator, probes: &[Probe], from: Time, to: Time, step: Time) -> String {
    assert!(step > Time::ZERO, "step must be positive");
    assert!(to > from, "empty window");
    let cols = ((to - from).as_ps() / step.as_ps()) as usize + 1;
    let label_w = probes.iter().map(|p| p.label.len()).max().unwrap_or(0);
    let mut out = String::new();
    for p in probes {
        let mut line = format!("{:>label_w$} ", p.label);
        if p.width() == 1 {
            let wf = sim
                .waveform(p.nets[0])
                .unwrap_or_else(|| panic!("net {} was not traced", sim.net_name(p.nets[0])));
            for c in 0..cols {
                let t = from + step * c as u64;
                line.push(match wf.value_at(t) {
                    Logic::L => '_',
                    Logic::H => '#',
                    Logic::X => 'x',
                    Logic::Z => 'z',
                });
            }
        } else {
            let mut prev = String::new();
            for c in 0..cols {
                let t = from + step * c as u64;
                let vals: Vec<Logic> = p
                    .nets
                    .iter()
                    .map(|&n| {
                        sim.waveform(n)
                            .unwrap_or_else(|| panic!("net {} was not traced", sim.net_name(n)))
                            .value_at(t)
                    })
                    .collect();
                let s = bus_hex(&vals);
                if s != prev {
                    // Print the new value, continuing with '=' filler.
                    let printed: String = s.chars().take(1).collect();
                    line.push_str(&printed);
                    prev = s;
                } else {
                    line.push('=');
                }
            }
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

fn probe_value_str(sim: &Simulator, p: &Probe, t: Time) -> String {
    if p.width() == 1 {
        let wf = sim.waveform(p.nets[0]).expect("traced");
        wf.value_at(t).as_char().to_string()
    } else {
        // MSB first, per VCD convention.
        p.nets
            .iter()
            .rev()
            .map(|&n| sim.waveform(n).expect("traced").value_at(t).as_char())
            .collect()
    }
}

fn bus_hex(vals: &[Logic]) -> String {
    let mut num = 0u64;
    for (i, v) in vals.iter().enumerate() {
        match v.to_bool() {
            Some(true) => num |= 1 << i,
            Some(false) => {}
            None => return "?".into(),
        }
    }
    format!("{num:x}")
}

/// VCD identifier characters for variable `i` (printable ASCII 33..127).
fn short_id(i: usize) -> String {
    let mut i = i;
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockGen, Simulator};

    fn clock_sim() -> (Simulator, crate::NetId) {
        let mut sim = Simulator::new(0);
        let clk = sim.net("clk");
        sim.trace(clk);
        ClockGen::spawn_simple(&mut sim, clk, Time::from_ns(10));
        sim.run_until(Time::from_ns(30)).unwrap();
        (sim, clk)
    }

    #[test]
    fn vcd_contains_header_and_changes() {
        let (sim, clk) = clock_sim();
        let vcd = render_vcd(&sim, &[Probe::scalar("clk", clk)]);
        assert!(vcd.contains("$timescale"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("#10000\n1"));
        assert!(vcd.contains("#15000\n0"));
    }

    #[test]
    fn vcd_bus_renders_vector() {
        let mut sim = Simulator::new(0);
        let bus = sim.bus("d", 2);
        sim.trace_bus(&bus);
        let d0 = sim.driver(bus[0]);
        let d1 = sim.driver(bus[1]);
        sim.drive_at(d0, bus[0], Logic::H, Time::from_ns(1));
        sim.drive_at(d1, bus[1], Logic::L, Time::from_ns(1));
        sim.run_until(Time::from_ns(2)).unwrap();
        let vcd = render_vcd(&sim, &[Probe::bus("d", &bus)]);
        assert!(vcd.contains("$var wire 2"));
        assert!(vcd.contains("b01 "), "vcd was:\n{vcd}");
    }

    #[test]
    fn ascii_shows_levels() {
        let (sim, clk) = clock_sim();
        let art = render_ascii(
            &sim,
            &[Probe::scalar("clk", clk)],
            Time::ZERO,
            Time::from_ns(30),
            Time::from_ns(1),
        );
        assert!(art.contains("clk"));
        assert!(art.contains('#'));
        assert!(art.contains('_'));
    }

    #[test]
    #[should_panic]
    fn untraced_net_panics() {
        let mut sim = Simulator::new(0);
        let n = sim.net("n");
        let _ = render_vcd(&sim, &[Probe::scalar("n", n)]);
    }
}
