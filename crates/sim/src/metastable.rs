//! The analytical synchronizer-metastability model.
//!
//! When a flip-flop samples a data input that changes inside a small
//! *metastability window* `T_w` around the clock edge, its output may hover
//! between levels for an unbounded settling time; the probability of still
//! being unresolved after `t` decays as `e^{-t/τ}`. This is the standard
//! model behind the paper's claim that its FIFOs "can be made arbitrarily
//! robust with regard to metastability": each added synchronizer latch
//! multiplies the available settling time by a clock period, growing MTBF
//! exponentially.
//!
//! `mtf-gates`' flip-flops consult a [`MetaModel`] to decide whether a
//! sample went metastable and, if so, how long the `X` output persists
//! before resolving to a random definite value.

use rand::rngs::StdRng;
use rand::Rng;

use crate::logic::Logic;
use crate::time::Time;

/// Parameters of the metastability model for one flip-flop (or latch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetaModel {
    /// Width of the vulnerable window centred on the sampling edge. A data
    /// transition within ±`window/2` of the edge makes the sample
    /// metastable.
    pub window: Time,
    /// Settling time constant τ: resolution times are drawn from
    /// `Exp(1/τ)`.
    pub tau: Time,
    /// Hard cap on a drawn resolution time, keeping pathological draws from
    /// stalling a simulation (physically: a downstream circuit would have
    /// failed long before).
    pub max_settle: Time,
}

impl MetaModel {
    /// A model calibrated to 0.6 µm-era flip-flops: `T_w` = 100 ps,
    /// τ = 150 ps, capped at 30 τ.
    pub fn hp06() -> Self {
        MetaModel {
            window: Time::from_ps(100),
            tau: Time::from_ps(150),
            max_settle: Time::from_ps(150 * 30),
        }
    }

    /// A model that never goes metastable — for experiments that want ideal
    /// flops (e.g. pure-throughput runs where the clocks are rationally
    /// related by construction).
    pub fn ideal() -> Self {
        MetaModel {
            window: Time::ZERO,
            tau: Time::from_ps(1),
            max_settle: Time::ZERO,
        }
    }

    /// Would a data change at `data_change` make a sample at `edge`
    /// metastable?
    pub fn is_vulnerable(&self, data_change: Time, edge: Time) -> bool {
        if self.window == Time::ZERO {
            return false;
        }
        let half = Time::from_ps(self.window.as_ps() / 2);
        data_change.abs_diff(edge) <= half
    }

    /// Draws a settling time from the exponential distribution, capped at
    /// `max_settle`.
    pub fn draw_settle(&self, rng: &mut StdRng) -> Time {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let t = -(self.tau.as_ps() as f64) * u.ln();
        let capped = t.min(self.max_settle.as_ps() as f64);
        Time::from_ps(capped.round() as u64)
    }

    /// Draws the definite value the metastable node finally resolves to
    /// (uniformly random — the input kept moving, so neither old nor new
    /// value is privileged).
    pub fn draw_resolution(&self, rng: &mut StdRng) -> Logic {
        if rng.gen::<bool>() {
            Logic::H
        } else {
            Logic::L
        }
    }
}

/// Mean time between synchronizer failures, in seconds:
///
/// `MTBF = e^{t_r / τ} / (T_w · f_clk · f_data)`
///
/// where `t_r` is the settling time available before the output is used
/// (for a chain of `k` two-latch synchronizer stages clocked at period `T`,
/// roughly `(k − 1)·T` plus the slack in the first cycle), `τ` and `T_w`
/// are the flop constants, and `f_clk`/`f_data` are the sampling-clock and
/// data-change rates.
///
/// This is the quantity behind the paper's "arbitrarily robust" knob: the
/// `robustness` experiment (E8) sweeps the synchronizer depth and shows the
/// exponential growth.
///
/// # Panics
///
/// Panics if any rate or time constant is non-positive.
pub fn mtbf_seconds(
    settle_available: Time,
    tau: Time,
    window: Time,
    f_clk_hz: f64,
    f_data_hz: f64,
) -> f64 {
    assert!(tau > Time::ZERO, "tau must be positive");
    assert!(window > Time::ZERO, "window must be positive");
    assert!(f_clk_hz > 0.0 && f_data_hz > 0.0, "rates must be positive");
    let tr = settle_available.as_ps() as f64;
    let tau_ps = tau.as_ps() as f64;
    let tw_s = window.as_ps() as f64 * 1e-12;
    (tr / tau_ps).exp() / (tw_s * f_clk_hz * f_data_hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vulnerability_window_is_symmetric() {
        let m = MetaModel::hp06(); // window 100 ps -> half 50 ps
        let edge = Time::from_ns(10);
        assert!(m.is_vulnerable(Time::from_ps(9_950), edge));
        assert!(m.is_vulnerable(Time::from_ps(10_050), edge));
        assert!(!m.is_vulnerable(Time::from_ps(9_949), edge));
        assert!(!m.is_vulnerable(Time::from_ps(10_051), edge));
    }

    #[test]
    fn ideal_model_is_never_vulnerable() {
        let m = MetaModel::ideal();
        assert!(!m.is_vulnerable(Time::from_ns(10), Time::from_ns(10)));
    }

    #[test]
    fn settle_times_are_capped_and_positive() {
        let m = MetaModel::hp06();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let t = m.draw_settle(&mut rng);
            assert!(t <= m.max_settle);
        }
    }

    #[test]
    fn settle_mean_is_roughly_tau() {
        let m = MetaModel::hp06();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.draw_settle(&mut rng).as_ps()).sum();
        let mean = sum as f64 / n as f64;
        let tau = m.tau.as_ps() as f64;
        assert!((mean - tau).abs() < tau * 0.1, "mean {mean} vs tau {tau}");
    }

    #[test]
    fn resolution_is_roughly_fair() {
        let m = MetaModel::hp06();
        let mut rng = StdRng::seed_from_u64(3);
        let highs = (0..10_000)
            .filter(|_| m.draw_resolution(&mut rng) == Logic::H)
            .count();
        assert!((4_000..6_000).contains(&highs));
    }

    #[test]
    fn mtbf_grows_exponentially_with_settle_time() {
        let tau = Time::from_ps(150);
        let tw = Time::from_ps(100);
        let one = mtbf_seconds(Time::from_ns(2), tau, tw, 500e6, 500e6);
        let two = mtbf_seconds(Time::from_ns(4), tau, tw, 500e6, 500e6);
        // Adding 2 ns of settling multiplies MTBF by e^(2000/150) ≈ 6.2e5.
        let ratio = two / one;
        assert!((5e5..8e5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic]
    fn mtbf_rejects_zero_rate() {
        let _ = mtbf_seconds(
            Time::from_ns(2),
            Time::from_ps(150),
            Time::from_ps(100),
            0.0,
            1.0,
        );
    }
}
