//! Four-valued signal logic and small bit-vectors.

use std::fmt;
use std::ops::Not;

/// A four-valued logic level.
///
/// * `L` — driven low (logic 0)
/// * `H` — driven high (logic 1)
/// * `X` — unknown / metastable / driver conflict
/// * `Z` — high impedance (undriven)
///
/// `X` propagates pessimistically through the gate library, and is also the
/// value a flip-flop output takes while metastable (see
/// [`MetaModel`](crate::MetaModel)). `Z` is produced only by disabled
/// tri-state drivers; the FIFO cells of the paper broadcast dequeued data on
/// shared tri-state `get_data` buses, which is why the kernel supports it
/// natively.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Logic {
    /// Driven low.
    L,
    /// Driven high.
    H,
    /// Unknown or metastable.
    X,
    /// High impedance (undriven).
    #[default]
    Z,
}

impl Logic {
    /// Converts a `bool` to a strongly driven level.
    #[inline]
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::H
        } else {
            Logic::L
        }
    }

    /// `Some(true)` for `H`, `Some(false)` for `L`, `None` otherwise.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::L => Some(false),
            Logic::H => Some(true),
            _ => None,
        }
    }

    /// True if the value is a driven 0 or 1.
    #[inline]
    pub fn is_definite(self) -> bool {
        matches!(self, Logic::L | Logic::H)
    }

    /// True if the value is `H`.
    #[inline]
    pub fn is_high(self) -> bool {
        self == Logic::H
    }

    /// True if the value is `L`.
    #[inline]
    pub fn is_low(self) -> bool {
        self == Logic::L
    }

    /// Resolves two simultaneous driver contributions on one net.
    ///
    /// `Z` yields to anything; agreeing drivers keep their value; any other
    /// combination (conflict, or an `X` contribution) is `X`.
    ///
    /// The operation is commutative and associative with identity `Z`, so a
    /// net with any number of drivers has a well-defined resolved value.
    #[inline]
    pub fn resolve(self, other: Logic) -> Logic {
        use Logic::*;
        match (self, other) {
            (Z, v) | (v, Z) => v,
            (a, b) if a == b => a,
            _ => X,
        }
    }

    /// Kleene AND: `L` dominates, `H` is identity, otherwise `X`.
    #[inline]
    pub fn and(self, other: Logic) -> Logic {
        use Logic::*;
        match (self, other) {
            (L, _) | (_, L) => L,
            (H, H) => H,
            _ => X,
        }
    }

    /// Kleene OR: `H` dominates, `L` is identity, otherwise `X`.
    #[inline]
    pub fn or(self, other: Logic) -> Logic {
        use Logic::*;
        match (self, other) {
            (H, _) | (_, H) => H,
            (L, L) => L,
            _ => X,
        }
    }

    /// Kleene XOR: definite on definite inputs, otherwise `X`.
    #[inline]
    pub fn xor(self, other: Logic) -> Logic {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }

    /// The single-character display form (`0`, `1`, `x`, `z`),
    /// matching VCD conventions.
    #[inline]
    pub fn as_char(self) -> char {
        match self {
            Logic::L => '0',
            Logic::H => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }
}

impl Not for Logic {
    type Output = Logic;
    /// Kleene NOT: definite values invert, `X` and `Z` both become `X`
    /// (a floating gate input is an unknown input).
    #[inline]
    fn not(self) -> Logic {
        match self {
            Logic::L => Logic::H,
            Logic::H => Logic::L,
            _ => Logic::X,
        }
    }
}

impl From<bool> for Logic {
    #[inline]
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

/// A fixed-width vector of [`Logic`] values — a data word on a bus.
///
/// Bit 0 is the least significant bit. Used by the word-level register and
/// bus helpers in `mtf-gates` and by the FIFO data paths.
///
/// ```
/// use mtf_sim::{Logic, LogicVec};
/// let w = LogicVec::from_u64(0b1010, 4);
/// assert_eq!(w.bit(1), Logic::H);
/// assert_eq!(w.to_u64(), Some(0b1010));
/// assert_eq!(format!("{w}"), "1010");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LogicVec {
    bits: Vec<Logic>,
}

impl LogicVec {
    /// A vector of `width` copies of `fill`.
    pub fn filled(fill: Logic, width: usize) -> Self {
        LogicVec {
            bits: vec![fill; width],
        }
    }

    /// All-`X` vector (the reset state of an uninitialised register).
    pub fn unknown(width: usize) -> Self {
        Self::filled(Logic::X, width)
    }

    /// The low `width` bits of `value`, LSB first.
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(width <= 64, "LogicVec::from_u64 supports at most 64 bits");
        LogicVec {
            bits: (0..width)
                .map(|i| Logic::from_bool((value >> i) & 1 == 1))
                .collect(),
        }
    }

    /// Builds from a slice of levels (index 0 = LSB).
    pub fn from_bits(bits: &[Logic]) -> Self {
        LogicVec {
            bits: bits.to_vec(),
        }
    }

    /// Number of bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The level of bit `i` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: usize) -> Logic {
        self.bits[i]
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set_bit(&mut self, i: usize, v: Logic) {
        self.bits[i] = v;
    }

    /// Iterates LSB-first over the levels.
    pub fn iter(&self) -> impl Iterator<Item = Logic> + '_ {
        self.bits.iter().copied()
    }

    /// The numeric value, if every bit is definite and width ≤ 64.
    pub fn to_u64(&self) -> Option<u64> {
        if self.bits.len() > 64 {
            return None;
        }
        let mut v = 0u64;
        for (i, b) in self.bits.iter().enumerate() {
            match b.to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    /// True if every bit is a driven 0 or 1.
    pub fn is_definite(&self) -> bool {
        self.bits.iter().all(|b| b.is_definite())
    }
}

impl fmt::Display for LogicVec {
    /// MSB-first character string, matching waveform-viewer conventions.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.bits.iter().rev() {
            write!(f, "{}", b.as_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn resolve_is_commutative_with_identity_z() {
        for a in [L, H, X, Z] {
            assert_eq!(a.resolve(Z), a);
            assert_eq!(Z.resolve(a), a);
            for b in [L, H, X, Z] {
                assert_eq!(a.resolve(b), b.resolve(a));
            }
        }
    }

    #[test]
    fn resolve_conflict_is_x() {
        assert_eq!(L.resolve(H), X);
        assert_eq!(H.resolve(X), X);
        assert_eq!(L.resolve(L), L);
        assert_eq!(H.resolve(H), H);
    }

    #[test]
    fn resolve_is_associative() {
        let vals = [L, H, X, Z];
        for a in vals {
            for b in vals {
                for c in vals {
                    assert_eq!(a.resolve(b).resolve(c), a.resolve(b.resolve(c)));
                }
            }
        }
    }

    #[test]
    fn kleene_and_or() {
        assert_eq!(L.and(X), L);
        assert_eq!(H.and(X), X);
        assert_eq!(H.and(H), H);
        assert_eq!(H.or(X), H);
        assert_eq!(L.or(X), X);
        assert_eq!(L.or(L), L);
        assert_eq!(Z.and(H), X);
        assert_eq!(Z.or(L), X);
    }

    #[test]
    fn kleene_not() {
        assert_eq!(!L, H);
        assert_eq!(!H, L);
        assert_eq!(!X, X);
        assert_eq!(!Z, X);
    }

    #[test]
    fn xor_definite_only() {
        assert_eq!(L.xor(H), H);
        assert_eq!(H.xor(H), L);
        assert_eq!(H.xor(X), X);
        assert_eq!(Z.xor(L), X);
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from(true), H);
        assert_eq!(Logic::from(false), L);
        assert_eq!(H.to_bool(), Some(true));
        assert_eq!(X.to_bool(), None);
        assert_eq!(Z.to_bool(), None);
    }

    #[test]
    fn logicvec_round_trip() {
        let v = LogicVec::from_u64(0xA5, 8);
        assert_eq!(v.to_u64(), Some(0xA5));
        assert_eq!(v.width(), 8);
        assert_eq!(v.bit(0), H);
        assert_eq!(v.bit(1), L);
    }

    #[test]
    fn logicvec_with_x_has_no_value() {
        let mut v = LogicVec::from_u64(3, 4);
        v.set_bit(2, X);
        assert_eq!(v.to_u64(), None);
        assert!(!v.is_definite());
    }

    #[test]
    fn logicvec_display_is_msb_first() {
        assert_eq!(format!("{}", LogicVec::from_u64(0b0110, 4)), "0110");
        let mut v = LogicVec::from_u64(0, 2);
        v.set_bit(0, Z);
        assert_eq!(format!("{v}"), "0z");
    }

    #[test]
    fn unknown_is_all_x() {
        let v = LogicVec::unknown(3);
        assert!(v.iter().all(|b| b == X));
        assert_eq!(v.to_u64(), None);
    }
}
