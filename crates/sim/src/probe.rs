//! Waveform recording and querying.

use crate::logic::Logic;
use crate::net::NetId;
use crate::time::Time;

/// Which signal edges to select in [`Waveform::edges`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Edge {
    /// Transitions whose new value is `H`.
    Rising,
    /// Transitions whose new value is `L`.
    Falling,
    /// Every recorded transition.
    Any,
}

/// The recorded history of one net: a sequence of `(time, new_value)`
/// change points, starting with the value at the moment tracing began.
///
/// Enable recording with [`Simulator::trace`](crate::Simulator::trace) and
/// retrieve with [`Simulator::waveform`](crate::Simulator::waveform).
#[derive(Clone, Debug, Default)]
pub struct Waveform {
    points: Vec<(Time, Logic)>,
}

impl Waveform {
    pub(crate) fn new() -> Self {
        Waveform { points: Vec::new() }
    }

    pub(crate) fn record(&mut self, t: Time, v: Logic) {
        if let Some(&(lt, lv)) = self.points.last() {
            if lv == v {
                return;
            }
            if lt == t {
                // Same-instant refinement: keep the final value.
                let last = self.points.last_mut().expect("non-empty");
                last.1 = v;
                // Collapse if this undoes the previous change.
                if self.points.len() >= 2 && self.points[self.points.len() - 2].1 == v {
                    self.points.pop();
                }
                return;
            }
        }
        self.points.push((t, v));
    }

    /// The change points, in time order. The first entry is the value when
    /// tracing was enabled.
    pub fn points(&self) -> &[(Time, Logic)] {
        &self.points
    }

    /// The value at instant `t` (the most recent change at or before `t`);
    /// `Z` if `t` precedes the first record.
    pub fn value_at(&self, t: Time) -> Logic {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => Logic::Z,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Iterates over the instants of the selected `edge` kind.
    ///
    /// The initial record (tracing start) is not an edge.
    pub fn edges(&self, edge: Edge) -> impl Iterator<Item = Time> + '_ {
        self.points
            .iter()
            .skip(1)
            .filter(move |(_, v)| match edge {
                Edge::Rising => *v == Logic::H,
                Edge::Falling => *v == Logic::L,
                Edge::Any => true,
            })
            .map(|&(t, _)| t)
    }

    /// The first edge of the given kind at or after `from`, if any.
    pub fn next_edge(&self, from: Time, edge: Edge) -> Option<Time> {
        self.edges(edge).find(|&t| t >= from)
    }

    /// Number of transitions recorded (excluding the initial value).
    pub fn transition_count(&self) -> usize {
        self.points.len().saturating_sub(1)
    }
}

/// A handle pairing a net with its name, convenient for bundling the
/// signals an experiment wants to inspect or render to VCD.
#[derive(Clone, Debug)]
pub struct Probe {
    /// Display name for reports and VCD.
    pub label: String,
    /// The nets making up the signal, LSB first (one net for a scalar).
    pub nets: Vec<NetId>,
}

impl Probe {
    /// A scalar probe.
    pub fn scalar(label: impl Into<String>, net: NetId) -> Self {
        Probe {
            label: label.into(),
            nets: vec![net],
        }
    }

    /// A bus probe (`nets[0]` = LSB).
    pub fn bus(label: impl Into<String>, nets: &[NetId]) -> Self {
        Probe {
            label: label.into(),
            nets: nets.to_vec(),
        }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.nets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    fn wf(points: &[(u64, Logic)]) -> Waveform {
        let mut w = Waveform::new();
        for &(t, v) in points {
            w.record(Time::from_ns(t), v);
        }
        w
    }

    #[test]
    fn value_at_steps() {
        let w = wf(&[(0, L), (10, H), (20, L)]);
        assert_eq!(w.value_at(Time::ZERO), L);
        assert_eq!(w.value_at(Time::from_ns(9)), L);
        assert_eq!(w.value_at(Time::from_ns(10)), H);
        assert_eq!(w.value_at(Time::from_ns(15)), H);
        assert_eq!(w.value_at(Time::from_ns(25)), L);
    }

    #[test]
    fn value_before_first_record_is_z() {
        let w = wf(&[(5, H)]);
        assert_eq!(w.value_at(Time::from_ns(1)), Z);
    }

    #[test]
    fn duplicate_values_collapse() {
        let mut w = wf(&[(0, L), (10, H)]);
        w.record(Time::from_ns(12), H);
        assert_eq!(w.transition_count(), 1);
    }

    #[test]
    fn same_instant_refinement_keeps_final_value() {
        let mut w = wf(&[(0, L)]);
        w.record(Time::from_ns(5), H);
        w.record(Time::from_ns(5), X);
        assert_eq!(w.value_at(Time::from_ns(5)), X);
        assert_eq!(w.transition_count(), 1);
    }

    #[test]
    fn same_instant_bounce_collapses_away() {
        let mut w = wf(&[(0, L)]);
        w.record(Time::from_ns(5), H);
        w.record(Time::from_ns(5), L); // back to previous: no net change
        assert_eq!(w.transition_count(), 0);
        assert_eq!(w.value_at(Time::from_ns(6)), L);
    }

    #[test]
    fn edge_selection() {
        let w = wf(&[(0, L), (10, H), (20, L), (30, H)]);
        let rises: Vec<Time> = w.edges(Edge::Rising).collect();
        assert_eq!(rises, vec![Time::from_ns(10), Time::from_ns(30)]);
        let falls: Vec<Time> = w.edges(Edge::Falling).collect();
        assert_eq!(falls, vec![Time::from_ns(20)]);
        assert_eq!(w.edges(Edge::Any).count(), 3);
    }

    #[test]
    fn next_edge_is_inclusive() {
        let w = wf(&[(0, L), (10, H), (20, L)]);
        assert_eq!(
            w.next_edge(Time::from_ns(10), Edge::Rising),
            Some(Time::from_ns(10))
        );
        assert_eq!(w.next_edge(Time::from_ns(11), Edge::Rising), None);
        assert_eq!(
            w.next_edge(Time::ZERO, Edge::Falling),
            Some(Time::from_ns(20))
        );
    }

    #[test]
    fn probe_constructors() {
        let p = Probe::scalar("clk", NetId(3));
        assert_eq!(p.width(), 1);
        let b = Probe::bus("data", &[NetId(0), NetId(1)]);
        assert_eq!(b.width(), 2);
        assert_eq!(b.label, "data");
    }
}
