//! Free-running clock generation.

use crate::component::{Component, Ctx};
use crate::logic::Logic;
use crate::net::{DriverId, NetId};
use crate::sim::Simulator;
use crate::time::Time;

/// A free-running clock generator.
///
/// Drives its net low at `phase`, then repeats: high after
/// `period - high_time`, low after `high_time`... i.e. the *rising* edges
/// fall at `phase + period, phase + 2·period, …` and the duty cycle is
/// `high_time / period`. Two [`ClockGen`]s with incommensurate periods give
/// genuinely plesiochronous domains — exactly the situation the paper's
/// synchronizers must survive.
///
/// ```
/// use mtf_sim::{ClockGen, Logic, Simulator, Time};
///
/// let mut sim = Simulator::new(7);
/// let clk = sim.net("clk");
/// ClockGen::builder(Time::from_ns(10))
///     .phase(Time::from_ns(2))
///     .spawn(&mut sim, clk);
/// sim.run_until(Time::from_ns(13)).unwrap();
/// assert_eq!(sim.value(clk), Logic::H); // rose at 12 ns
/// ```
#[derive(Debug)]
pub struct ClockGen {
    driver: DriverId,
    period: Time,
    high_time: Time,
    phase: Time,
    started: bool,
    level: Logic,
}

/// Configures and spawns a [`ClockGen`].
#[derive(Debug, Clone)]
pub struct ClockGenBuilder {
    period: Time,
    high_time: Option<Time>,
    phase: Time,
}

impl ClockGen {
    /// Starts building a clock with the given `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn builder(period: Time) -> ClockGenBuilder {
        assert!(period > Time::ZERO, "clock period must be positive");
        ClockGenBuilder {
            period,
            high_time: None,
            phase: Time::ZERO,
        }
    }

    /// Convenience: spawns a 50%-duty, zero-phase clock on `net`.
    pub fn spawn_simple(sim: &mut Simulator, net: NetId, period: Time) {
        Self::builder(period).spawn(sim, net);
    }
}

impl ClockGenBuilder {
    /// Sets the high time (default: `period / 2`).
    ///
    /// # Panics
    ///
    /// Panics (at [`spawn`](Self::spawn)) if the high time is zero or not
    /// less than the period.
    pub fn high_time(mut self, high_time: Time) -> Self {
        self.high_time = Some(high_time);
        self
    }

    /// Sets the phase offset: the first rising edge occurs at
    /// `phase + period` (default phase: zero).
    pub fn phase(mut self, phase: Time) -> Self {
        self.phase = phase;
        self
    }

    /// Instantiates the clock in `sim`, driving `net`.
    pub fn spawn(self, sim: &mut Simulator, net: NetId) {
        let high_time = self.high_time.unwrap_or(self.period / 2);
        assert!(
            high_time > Time::ZERO && high_time < self.period,
            "high time must be inside (0, period)"
        );
        let driver = sim.driver(net);
        let gen = ClockGen {
            driver,
            period: self.period,
            high_time,
            phase: self.phase,
            started: false,
            level: Logic::L,
        };
        sim.add_component(Box::new(gen), &[]);
    }
}

impl Component for ClockGen {
    fn name(&self) -> &str {
        "clock"
    }

    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if !self.started {
            self.started = true;
            self.level = Logic::L;
            ctx.drive(self.driver, Logic::L, Time::ZERO);
            // First rising edge at phase + (period - high_time) past... no:
            // we define rising edges at phase + k·period (k ≥ 1), so the
            // low stretch before the first rise is period - high_time long
            // only in steady state; from t=0 we simply wait until
            // phase + period - high_time? Keep it simple and regular:
            // rise at phase + period, fall high_time later.
            let first_rise = self.phase + self.period;
            ctx.wake_in(first_rise.saturating_sub(ctx.now()));
            return;
        }
        // Toggle.
        if self.level == Logic::L {
            self.level = Logic::H;
            ctx.drive(self.driver, Logic::H, Time::ZERO);
            ctx.wake_in(self.high_time);
        } else {
            self.level = Logic::L;
            ctx.drive(self.driver, Logic::L, Time::ZERO);
            ctx.wake_in(self.period - self.high_time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Edge;

    #[test]
    fn fifty_percent_duty() {
        let mut sim = Simulator::new(0);
        let clk = sim.net("clk");
        sim.trace(clk);
        ClockGen::spawn_simple(&mut sim, clk, Time::from_ns(10));
        sim.run_until(Time::from_ns(100)).unwrap();
        let wf = sim.waveform(clk).unwrap();
        let rises: Vec<Time> = wf.edges(Edge::Rising).collect();
        // Events at exactly the horizon are processed, so the rise at
        // 100 ns is included.
        assert_eq!(
            rises,
            (1..=10).map(|k| Time::from_ns(10 * k)).collect::<Vec<_>>()
        );
        let falls: Vec<Time> = wf.edges(Edge::Falling).collect();
        // Starts low (not a fall), falls at 15, 25, ...
        assert_eq!(falls[0], Time::from_ns(15));
        assert_eq!(falls[1], Time::from_ns(25));
    }

    #[test]
    fn phase_shifts_edges() {
        let mut sim = Simulator::new(0);
        let clk = sim.net("clk");
        sim.trace(clk);
        ClockGen::builder(Time::from_ns(8))
            .phase(Time::from_ns(3))
            .spawn(&mut sim, clk);
        sim.run_until(Time::from_ns(40)).unwrap();
        let wf = sim.waveform(clk).unwrap();
        let rises: Vec<Time> = wf.edges(Edge::Rising).collect();
        assert_eq!(rises[0], Time::from_ns(11));
        assert_eq!(rises[1], Time::from_ns(19));
    }

    #[test]
    fn asymmetric_duty_cycle() {
        let mut sim = Simulator::new(0);
        let clk = sim.net("clk");
        sim.trace(clk);
        ClockGen::builder(Time::from_ns(10))
            .high_time(Time::from_ns(3))
            .spawn(&mut sim, clk);
        sim.run_until(Time::from_ns(50)).unwrap();
        let wf = sim.waveform(clk).unwrap();
        let rises: Vec<Time> = wf.edges(Edge::Rising).collect();
        let falls: Vec<Time> = wf.edges(Edge::Falling).collect();
        assert_eq!(rises[0], Time::from_ns(10));
        assert_eq!(falls[0], Time::from_ns(13));
        assert_eq!(rises[1], Time::from_ns(20));
    }

    #[test]
    #[should_panic]
    fn zero_period_rejected() {
        let _ = ClockGen::builder(Time::ZERO);
    }

    #[test]
    #[should_panic]
    fn degenerate_duty_rejected() {
        let mut sim = Simulator::new(0);
        let clk = sim.net("clk");
        ClockGen::builder(Time::from_ns(10))
            .high_time(Time::from_ns(10))
            .spawn(&mut sim, clk);
    }
}
