//! Property tests pitting [`EventQueue`] against a reference `BinaryHeap`.
//!
//! The timing wheel must be *observationally identical* to the binary
//! heap it replaced: any interleaving of pushes and pops yields the same
//! `(time, seq)` pop sequence. The seeded LCG test in `event.rs` checks
//! fixed interleavings everywhere (no external crates); this module is
//! the shrinking-capable `proptest` version, so a violation minimises to
//! the smallest offending op sequence.

use proptest::prelude::*;
use std::collections::BinaryHeap;

use crate::clock::ClockGen;
use crate::component::{Component, ComponentId, Ctx};
use crate::event::{Event, EventKind, EventQueue};
use crate::logic::Logic;
use crate::net::{DriverId, NetId};
use crate::race::RaceHazardKind;
use crate::sim::Simulator;
use crate::time::Time;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push at `last_popped_time + delta` (the simulator never schedules
    /// into the past).
    Push {
        delta: u64,
    },
    Pop,
}

/// Deltas biased across every tier of the queue: the same-instant delta
/// ring, the exact-ps near wheel, both coarse levels, and the overflow
/// map beyond the 2²⁴ ps wheel span.
fn delta() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => Just(0u64),
        3 => 1u64..64,
        3 => 1u64..4_096,
        2 => 1u64..262_144,
        2 => 1u64..(1u64 << 24),
        1 => 1u64..(1u64 << 30),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => delta().prop_map(|delta| Op::Push { delta }),
        1 => Just(Op::Pop),
    ]
}

proptest! {
    /// Random push/pop interleavings (including same-instant bursts and
    /// far-future overflow residents) pop in exactly the reference
    /// heap's `(time, seq)` order.
    #[test]
    fn queue_matches_reference_heap(ops in prop::collection::vec(op(), 1..250)) {
        let mut q = EventQueue::default();
        let mut reference: BinaryHeap<Event> = BinaryHeap::new();
        let mut now = 0u64;
        let mut id = 0u32;
        for op in ops {
            match op {
                Op::Push { delta } => {
                    let t = Time::from_ps(now + delta);
                    let kind = EventKind::Wake { comp: ComponentId(id) };
                    id += 1;
                    let seq = q.push(t, kind);
                    reference.push(Event { time: t, seq, kind });
                }
                Op::Pop => {
                    let got = q.pop();
                    let want = reference.pop();
                    prop_assert_eq!(
                        got.map(|e| (e.time, e.seq)),
                        want.map(|e| (e.time, e.seq))
                    );
                    if let Some(e) = got {
                        now = e.time.as_ps();
                    }
                }
            }
            prop_assert_eq!(q.len(), reference.len());
        }
        // Drain both completely: the tail order must agree too.
        loop {
            match (q.pop(), reference.pop()) {
                (None, None) => break,
                (g, w) => prop_assert_eq!(
                    g.map(|e| (e.time, e.seq)),
                    w.map(|e| (e.time, e.seq))
                ),
            }
        }
    }

    /// A pure burst at one instant behind an arbitrary pre-population
    /// drains strictly FIFO.
    #[test]
    fn same_instant_bursts_stay_fifo(
        pre in prop::collection::vec(delta(), 0..20),
        at in 0u64..(1u64 << 25),
        burst in 2usize..64,
    ) {
        let mut q = EventQueue::default();
        for d in pre {
            // Strictly after `at`: the burst below must drain first.
            q.push(Time::from_ps(at + 1 + d), EventKind::Wake { comp: ComponentId(u32::MAX) });
        }
        let mut seqs = Vec::with_capacity(burst);
        for i in 0..burst {
            seqs.push(q.push(Time::from_ps(at), EventKind::Wake { comp: ComponentId(i as u32) }));
        }
        // All burst events share the earliest time `at`, so they must come
        // out first, in push (= seq) order.
        for &want_seq in &seqs {
            let e = q.pop().expect("burst event present");
            prop_assert_eq!(e.time, Time::from_ps(at));
            prop_assert_eq!(e.seq, want_seq);
        }
    }

    /// The delta-race sanitizer is *passive*: enabling it must not change
    /// one event of the run. Random inverter chains behind a random clock
    /// produce identical toggle counts, final values, and kernel stats
    /// with the sanitizer on and off — and, because every stage watches
    /// its input and each net has one driver, zero hazards of any kind.
    #[test]
    fn race_sanitizer_is_passive(
        period_ps in 500u64..4_000,
        delays in prop::collection::vec(1u64..300, 1..8),
    ) {
        let run = |sanitize: bool| {
            let mut sim = Simulator::new(42);
            if sanitize {
                sim.enable_race_sanitizer();
            }
            let mut nets = vec![sim.net("clk")];
            ClockGen::spawn_simple(&mut sim, nets[0], Time::from_ps(period_ps));
            for (i, &d) in delays.iter().enumerate() {
                let next = sim.net(format!("stage{i}"));
                let drv = sim.driver(next);
                let input = nets[i];
                sim.add_component(
                    Box::new(Inverter { input, drv, delay: Time::from_ps(d) }),
                    &[input],
                );
                nets.push(next);
            }
            sim.run_until(Time::from_ns(50)).expect("chain runs");
            let toggles: Vec<u64> = nets.iter().map(|&n| sim.toggles(n)).collect();
            let finals: Vec<Logic> = nets.iter().map(|&n| sim.value(n)).collect();
            (toggles, finals, sim.stats().events_processed, sim.race_hazards())
        };
        let (t0, f0, e0, h0) = run(false);
        let (t1, f1, e1, h1) = run(true);
        prop_assert_eq!(t0, t1, "sanitizer changed toggle counts");
        prop_assert_eq!(f0, f1, "sanitizer changed final values");
        prop_assert_eq!(e0, e1, "sanitizer changed the event schedule");
        prop_assert!(h0.is_empty(), "sanitizer off must record nothing");
        prop_assert!(
            !h1.iter().any(|h| h.kind == RaceHazardKind::ReadThenWrite),
            "watching single-driver chain flagged read-then-write: {:?}",
            h1
        );
    }
}

/// Forwards the inverted input after a fixed delay; watches its input, so
/// a correct kernel never hands it stale data.
struct Inverter {
    input: NetId,
    drv: DriverId,
    delay: Time,
}

impl Component for Inverter {
    fn name(&self) -> &str {
        "prop_inverter"
    }
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let v = match ctx.get(self.input) {
            Logic::H => Logic::L,
            Logic::L => Logic::H,
            other => other,
        };
        ctx.drive(self.drv, v, self.delay);
    }
}
