//! Property tests pitting [`EventQueue`] against a reference `BinaryHeap`.
//!
//! The timing wheel must be *observationally identical* to the binary
//! heap it replaced: any interleaving of pushes and pops yields the same
//! `(time, seq)` pop sequence. The seeded LCG test in `event.rs` checks
//! fixed interleavings everywhere (no external crates); this module is
//! the shrinking-capable `proptest` version, so a violation minimises to
//! the smallest offending op sequence.

use proptest::prelude::*;
use std::collections::BinaryHeap;

use crate::component::ComponentId;
use crate::event::{Event, EventKind, EventQueue};
use crate::time::Time;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push at `last_popped_time + delta` (the simulator never schedules
    /// into the past).
    Push {
        delta: u64,
    },
    Pop,
}

/// Deltas biased across every tier of the queue: the same-instant delta
/// ring, the exact-ps near wheel, both coarse levels, and the overflow
/// map beyond the 2²⁴ ps wheel span.
fn delta() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => Just(0u64),
        3 => 1u64..64,
        3 => 1u64..4_096,
        2 => 1u64..262_144,
        2 => 1u64..(1u64 << 24),
        1 => 1u64..(1u64 << 30),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => delta().prop_map(|delta| Op::Push { delta }),
        1 => Just(Op::Pop),
    ]
}

proptest! {
    /// Random push/pop interleavings (including same-instant bursts and
    /// far-future overflow residents) pop in exactly the reference
    /// heap's `(time, seq)` order.
    #[test]
    fn queue_matches_reference_heap(ops in prop::collection::vec(op(), 1..250)) {
        let mut q = EventQueue::default();
        let mut reference: BinaryHeap<Event> = BinaryHeap::new();
        let mut now = 0u64;
        let mut id = 0u32;
        for op in ops {
            match op {
                Op::Push { delta } => {
                    let t = Time::from_ps(now + delta);
                    let kind = EventKind::Wake { comp: ComponentId(id) };
                    id += 1;
                    let seq = q.push(t, kind);
                    reference.push(Event { time: t, seq, kind });
                }
                Op::Pop => {
                    let got = q.pop();
                    let want = reference.pop();
                    prop_assert_eq!(
                        got.map(|e| (e.time, e.seq)),
                        want.map(|e| (e.time, e.seq))
                    );
                    if let Some(e) = got {
                        now = e.time.as_ps();
                    }
                }
            }
            prop_assert_eq!(q.len(), reference.len());
        }
        // Drain both completely: the tail order must agree too.
        loop {
            match (q.pop(), reference.pop()) {
                (None, None) => break,
                (g, w) => prop_assert_eq!(
                    g.map(|e| (e.time, e.seq)),
                    w.map(|e| (e.time, e.seq))
                ),
            }
        }
    }

    /// A pure burst at one instant behind an arbitrary pre-population
    /// drains strictly FIFO.
    #[test]
    fn same_instant_bursts_stay_fifo(
        pre in prop::collection::vec(delta(), 0..20),
        at in 0u64..(1u64 << 25),
        burst in 2usize..64,
    ) {
        let mut q = EventQueue::default();
        for d in pre {
            // Strictly after `at`: the burst below must drain first.
            q.push(Time::from_ps(at + 1 + d), EventKind::Wake { comp: ComponentId(u32::MAX) });
        }
        let mut seqs = Vec::with_capacity(burst);
        for i in 0..burst {
            seqs.push(q.push(Time::from_ps(at), EventKind::Wake { comp: ComponentId(i as u32) }));
        }
        // All burst events share the earliest time `at`, so they must come
        // out first, in push (= seq) order.
        for &want_seq in &seqs {
            let e = q.pop().expect("burst event present");
            prop_assert_eq!(e.time, Time::from_ps(at));
            prop_assert_eq!(e.seq, want_seq);
        }
    }
}
