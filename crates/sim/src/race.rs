//! Delta-race sanitizer — opt-in detection of same-instant ordering
//! hazards.
//!
//! The kernel is deterministic: events at one timestamp pop in insertion
//! order, so any given binary replays bit-identically. But determinism of
//! *one* ordering does not mean the modelled circuit is insensitive to
//! ordering. Two classes of same-instant conflict make a model's outcome
//! depend on event sequence rather than on circuit semantics:
//!
//! * **read-then-write** — a component reads a net it does *not* watch,
//!   and later in the same instant the net's resolved value changes. The
//!   reader is never re-evaluated, so it acted on a value that a different
//!   (equally legal) event ordering would not have shown it.
//! * **write/write** — two distinct drivers change their contribution to
//!   one net within the same instant. The final resolved value is
//!   order-independent (resolution is commutative), but watchers wake per
//!   intermediate change, so downstream zero-delay logic can observe an
//!   ordering-dependent intermediate value.
//!
//! Enable with [`Simulator::enable_race_sanitizer`]; collect findings with
//! [`Simulator::race_hazards`]. The sanitizer is entirely passive — it
//! never alters scheduling — so an enabled run produces the same waveforms
//! as a plain run. The determinism test (`tests/determinism.rs` at the
//! workspace root) runs a full mixed-clock transfer under the sanitizer
//! and asserts zero read-then-write hazards: every gate in `mtf-gates`
//! has a nonzero propagation delay, so legitimate gate-level activity
//! never races within one delta cycle.
//!
//! [`Simulator::enable_race_sanitizer`]: crate::Simulator::enable_race_sanitizer
//! [`Simulator::race_hazards`]: crate::Simulator::race_hazards

use std::collections::HashMap;
use std::fmt;

use crate::component::ComponentId;
use crate::net::DriverId;
use crate::time::Time;

/// The class of a same-instant conflict. See the [module docs](self).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaceHazardKind {
    /// A non-watching component read the net before a same-instant
    /// resolved-value change — it acted on ordering-dependent data.
    ReadThenWrite,
    /// Two distinct drivers changed their contribution to the net within
    /// one instant.
    WriteWrite,
}

impl fmt::Display for RaceHazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RaceHazardKind::ReadThenWrite => "read-then-write",
            RaceHazardKind::WriteWrite => "write/write",
        })
    }
}

/// One recorded same-instant conflict.
#[derive(Clone, Debug)]
pub struct RaceHazard {
    /// Conflict class.
    pub kind: RaceHazardKind,
    /// The instant at which the conflicting accesses collided.
    pub time: Time,
    /// Name of the contested net.
    pub net: String,
    /// Who collided (reader component / driver pair).
    pub detail: String,
}

impl fmt::Display for RaceHazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] net '{}' at {}: {}",
            self.kind, self.net, self.time, self.detail
        )
    }
}

/// Per-instant bookkeeping. All maps are keyed by raw net index and
/// cleared lazily when the recorded instant falls behind simulator time,
/// so the event loop needs no explicit per-instant reset hook.
#[derive(Debug, Default)]
pub(crate) struct RaceState {
    /// The instant the maps describe.
    instant: Time,
    /// Net → components that read it this instant *without* watching it
    /// (watching readers are re-evaluated on change, so they never act on
    /// stale data).
    reads: HashMap<u32, Vec<ComponentId>>,
    /// Net → first driver whose contribution changed this instant.
    wrote: HashMap<u32, DriverId>,
    hazards: Vec<RaceHazard>,
}

impl RaceState {
    /// Discards the per-instant maps if `now` has moved past the instant
    /// they describe (recorded hazards are kept — they are cumulative).
    fn roll(&mut self, now: Time) {
        if now != self.instant {
            self.instant = now;
            self.reads.clear();
            self.wrote.clear();
        }
    }

    /// Records a non-watching read of net `net` by `comp`.
    pub(crate) fn note_read(&mut self, now: Time, net: u32, comp: ComponentId) {
        self.roll(now);
        let readers = self.reads.entry(net).or_default();
        if !readers.contains(&comp) {
            readers.push(comp);
        }
    }

    /// Records a contribution change by `driver` on `net`; returns the
    /// earlier same-instant writer if this is a write/write conflict.
    pub(crate) fn note_write(&mut self, now: Time, net: u32, driver: DriverId) -> Option<DriverId> {
        self.roll(now);
        match self.wrote.get(&net) {
            None => {
                self.wrote.insert(net, driver);
                None
            }
            Some(&prev) if prev != driver => Some(prev),
            Some(_) => None,
        }
    }

    /// Takes (and clears) the non-watching readers recorded for `net` this
    /// instant. Called when the net's resolved value changes: each taken
    /// reader is a read-then-write hazard. Clearing means one stale read is
    /// reported once, not once per subsequent change.
    pub(crate) fn take_stale_readers(&mut self, now: Time, net: u32) -> Vec<ComponentId> {
        self.roll(now);
        self.reads.remove(&net).unwrap_or_default()
    }

    pub(crate) fn push(&mut self, hazard: RaceHazard) {
        self.hazards.push(hazard);
    }

    pub(crate) fn hazards(&self) -> &[RaceHazard] {
        &self.hazards
    }
}

#[cfg(test)]
mod tests {
    use super::RaceHazardKind;
    use crate::prelude::*;

    /// Reads a net exactly once, on its initial wake — without watching it.
    struct OneShotReader {
        net: NetId,
        done: bool,
    }

    impl Component for OneShotReader {
        fn name(&self) -> &str {
            "one_shot_reader"
        }
        fn eval(&mut self, ctx: &mut Ctx<'_>) {
            if !self.done {
                let _ = ctx.get(self.net);
                self.done = true;
            }
        }
    }

    #[test]
    fn read_then_write_is_flagged() {
        let mut sim = Simulator::new(0);
        sim.enable_race_sanitizer();
        let n = sim.net("victim");
        let d = sim.driver(n);
        // Initial wake fires at t=0, before the same-instant drive below.
        sim.add_component(
            Box::new(OneShotReader {
                net: n,
                done: false,
            }),
            &[],
        );
        sim.drive_at(d, n, Logic::H, Time::ZERO);
        sim.run_until(Time::from_ns(1)).unwrap();
        let hazards = sim.race_hazards();
        assert_eq!(hazards.len(), 1, "hazards: {hazards:?}");
        assert_eq!(hazards[0].kind, RaceHazardKind::ReadThenWrite);
        assert_eq!(hazards[0].net, "victim");
        assert!(hazards[0].detail.contains("one_shot_reader"));
    }

    #[test]
    fn watching_reader_is_clean() {
        let mut sim = Simulator::new(0);
        sim.enable_race_sanitizer();
        let n = sim.net("victim");
        let d = sim.driver(n);
        // Same shape, but the reader *watches* the net — it is re-woken on
        // the change, so the stale first read is not a hazard.
        sim.add_component(
            Box::new(OneShotReader {
                net: n,
                done: false,
            }),
            &[n],
        );
        sim.drive_at(d, n, Logic::H, Time::ZERO);
        sim.run_until(Time::from_ns(1)).unwrap();
        assert!(sim.race_hazards().is_empty());
    }

    #[test]
    fn read_and_write_in_different_instants_are_clean() {
        let mut sim = Simulator::new(0);
        sim.enable_race_sanitizer();
        let n = sim.net("victim");
        let d = sim.driver(n);
        sim.add_component(
            Box::new(OneShotReader {
                net: n,
                done: false,
            }),
            &[],
        );
        // The write lands a full nanosecond after the read.
        sim.drive_at(d, n, Logic::H, Time::from_ns(1));
        sim.run_until(Time::from_ns(2)).unwrap();
        assert!(sim.race_hazards().is_empty());
    }

    #[test]
    fn write_write_is_flagged() {
        let mut sim = Simulator::new(0);
        sim.enable_race_sanitizer();
        let n = sim.net("bus");
        let d1 = sim.driver(n);
        let d2 = sim.driver(n);
        sim.drive_at(d1, n, Logic::L, Time::from_ns(1));
        sim.drive_at(d2, n, Logic::L, Time::from_ns(1));
        sim.run_until(Time::from_ns(2)).unwrap();
        let hazards = sim.race_hazards();
        assert_eq!(hazards.len(), 1, "hazards: {hazards:?}");
        assert_eq!(hazards[0].kind, RaceHazardKind::WriteWrite);
        assert_eq!(hazards[0].net, "bus");
        assert_eq!(sim.race_hazard_count(RaceHazardKind::WriteWrite), 1);
        assert_eq!(sim.race_hazard_count(RaceHazardKind::ReadThenWrite), 0);
    }

    #[test]
    fn staggered_writes_are_clean() {
        let mut sim = Simulator::new(0);
        sim.enable_race_sanitizer();
        let n = sim.net("bus");
        let d1 = sim.driver(n);
        let d2 = sim.driver(n);
        sim.drive_at(d1, n, Logic::L, Time::from_ns(1));
        sim.drive_at(d2, n, Logic::L, Time::from_ns(2));
        sim.run_until(Time::from_ns(3)).unwrap();
        assert!(sim.race_hazards().is_empty());
    }

    #[test]
    fn sanitizer_is_off_by_default() {
        let mut sim = Simulator::new(0);
        let n = sim.net("victim");
        let d = sim.driver(n);
        sim.add_component(
            Box::new(OneShotReader {
                net: n,
                done: false,
            }),
            &[],
        );
        sim.drive_at(d, n, Logic::H, Time::ZERO);
        sim.run_until(Time::from_ns(1)).unwrap();
        assert!(sim.race_hazards().is_empty());
    }
}
