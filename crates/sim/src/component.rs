//! The component trait and the evaluation context handed to components.

use rand::rngs::StdRng;

use crate::logic::{Logic, LogicVec};
use crate::net::{DriverId, NetId};
use crate::sim::{Simulator, Violation};
use crate::time::Time;

/// Identifies a component registered with a [`Simulator`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ComponentId(pub(crate) u32);

/// A behavioural element of the simulated circuit.
///
/// Everything that *does* something is a component: primitive gates and
/// flip-flops (`mtf-gates`), burst-mode and Petri-net controller engines
/// (`mtf-async`), clock generators, and the synchronous/asynchronous test
/// environments that drive the FIFOs.
///
/// A component is evaluated (its [`eval`](Component::eval) method called)
/// whenever one of the nets it was registered as watching changes resolved
/// value, and whenever a self-scheduled wake-up ([`Ctx::wake_in`]) fires.
/// Evaluation happens at a single instant: the component reads its input
/// nets through the [`Ctx`] and schedules *future* output changes; it never
/// sees time advance inside `eval`.
pub trait Component: 'static {
    /// A short human-readable instance name, used in violation reports and
    /// debug output.
    fn name(&self) -> &str {
        "component"
    }

    /// React to a net change or wake-up. See the trait docs for the model.
    fn eval(&mut self, ctx: &mut Ctx<'_>);
}

/// The evaluation context: a component's window onto the simulator.
///
/// Provides current time, net reads, future drive scheduling, self wake-up,
/// the shared deterministic RNG, and violation reporting.
#[derive(Debug)]
pub struct Ctx<'a> {
    pub(crate) sim: &'a mut Simulator,
    pub(crate) me: ComponentId,
}

impl<'a> Ctx<'a> {
    /// The current simulation time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// The resolved value of `net` at this instant.
    ///
    /// When the delta-race sanitizer is enabled
    /// ([`Simulator::enable_race_sanitizer`]), reads through here are
    /// recorded so a later same-instant change of the net can be flagged
    /// as an ordering hazard.
    pub fn get(&self, net: NetId) -> Logic {
        self.sim.note_read(self.me, net);
        self.sim.value(net)
    }

    /// Reads a multi-bit bus (`nets[0]` = LSB).
    pub fn get_vec(&self, nets: &[NetId]) -> LogicVec {
        for &n in nets {
            self.sim.note_read(self.me, n);
        }
        self.sim.value_vec(nets)
    }

    /// The instant at which `net` last changed resolved value.
    ///
    /// Flip-flops use this to detect transitions inside their setup/hold
    /// window.
    pub fn last_change(&self, net: NetId) -> Time {
        self.sim.last_change(net)
    }

    /// Schedules `driver` to contribute `value` after `delay`.
    ///
    /// A later call for the same driver cancels any still-pending earlier
    /// one (inertial behaviour): a pulse shorter than a gate's delay does
    /// not propagate through it.
    pub fn drive(&mut self, driver: DriverId, value: Logic, delay: Time) {
        self.sim.drive_in(driver, value, delay);
    }

    /// Schedules `driver` to contribute `value` at the current instant
    /// (still via the event queue, preserving deterministic ordering).
    pub fn drive_now(&mut self, driver: DriverId, value: Logic) {
        self.sim.drive_in(driver, value, Time::ZERO);
    }

    /// Applies `value` on `driver` immediately — no queue event. The net
    /// transition (value-equal skip, sanitizer note, recomputation,
    /// watcher wakes) is identical to a drive event landing at the
    /// current instant. Reserved for compiled-region engines, which have
    /// already accounted for the gate's delay in their own pending set;
    /// ordinary components should keep using [`Ctx::drive`].
    pub fn commit_drive(&mut self, driver: DriverId, value: Logic) {
        self.sim.commit_drive(driver, value);
    }

    /// Accounts one compiled-region evaluation pass covering
    /// `gate_evals` inline gate/flop evaluations (surfaces in
    /// [`SimStats`](crate::SimStats)).
    pub fn note_compiled_pass(&mut self, gate_evals: u64) {
        self.sim.note_compiled_pass(gate_evals);
    }

    /// Requests a re-evaluation of this component after `delay`.
    pub fn wake_in(&mut self, delay: Time) {
        let t = self.sim.now() + delay;
        self.sim.schedule_wake(self.me, t);
    }

    /// The simulator's deterministic random-number generator (used by the
    /// metastability model).
    pub fn rng(&mut self) -> &mut StdRng {
        self.sim.rng()
    }

    /// Records a timing-rule violation (setup/hold, drive conflicts, …).
    ///
    /// Violations do not stop the simulation; they are collected so that
    /// experiments can assert their presence or absence — the fmax search in
    /// `mtf-bench` shrinks the clock period until violations appear.
    pub fn report(&mut self, v: Violation) {
        self.sim.record_violation(v);
    }

    /// Asks the simulator to stop at the end of the current instant.
    /// [`Simulator::run_until`] returns early; used by test environments
    /// once they have produced/consumed their quota of data items.
    pub fn request_stop(&mut self) {
        self.sim.request_stop();
    }

    /// This component's own id (useful for logging).
    pub fn id(&self) -> ComponentId {
        self.me
    }
}
