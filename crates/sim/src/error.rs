//! Simulation errors.

use std::error::Error;
use std::fmt;

use crate::time::Time;

/// An error that aborts a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// More events than [`max_events_per_instant`] were processed at a
    /// single timestamp — almost always a zero-delay combinational loop in
    /// the netlist.
    ///
    /// [`max_events_per_instant`]: crate::Simulator::max_events_per_instant
    DeltaOverflow {
        /// The instant at which the oscillation was detected.
        time: Time,
        /// How many events had been processed at that instant.
        events: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeltaOverflow { time, events } => write!(
                f,
                "delta overflow at {time}: {events} events at one instant \
                 (zero-delay loop?)"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_time() {
        let e = SimError::DeltaOverflow {
            time: Time::from_ns(3),
            events: 42,
        };
        let s = e.to_string();
        assert!(s.contains("3.000ns"));
        assert!(s.contains("42"));
    }
}
