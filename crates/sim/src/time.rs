//! Simulation time in picoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant (or span) of simulation time, in integer picoseconds.
///
/// Picosecond resolution is fine enough that every gate delay in the
/// 0.6 µm-calibrated delay model (`mtf-timing`) is exactly representable,
/// and a `u64` still spans ~213 days of simulated time.
///
/// `Time` doubles as a duration type: the arithmetic operators below are the
/// ones that make sense for both readings.
///
/// ```
/// use mtf_sim::Time;
/// let t = Time::from_ns(3) + Time::from_ps(250);
/// assert_eq!(t.as_ps(), 3_250);
/// assert_eq!(format!("{t}"), "3.250ns");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero instant.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a time from a (non-negative, finite) nanosecond float,
    /// rounding to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative, NaN or too large for the range.
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid time: {ns} ns");
        let ps = (ns * 1_000.0).round();
        assert!(ps <= u64::MAX as f64, "time out of range: {ns} ns");
        Time(ps as u64)
    }

    /// This instant in picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction; clamps at [`Time::ZERO`].
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Absolute difference between two instants.
    #[inline]
    pub fn abs_diff(self, rhs: Time) -> Time {
        Time(self.0.abs_diff(rhs.0))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0 / 1_000;
        let ps = self.0 % 1_000;
        write!(f, "{ns}.{ps:03}ns")
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ns_f64(2.5), Time::from_ps(2_500));
    }

    #[test]
    fn from_ns_f64_rounds_to_nearest_ps() {
        assert_eq!(Time::from_ns_f64(0.0004), Time::from_ps(0));
        assert_eq!(Time::from_ns_f64(0.0006), Time::from_ps(1));
    }

    #[test]
    #[should_panic]
    fn from_ns_f64_rejects_negative() {
        let _ = Time::from_ns_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(3);
        let b = Time::from_ns(1);
        assert_eq!(a + b, Time::from_ns(4));
        assert_eq!(a - b, Time::from_ns(2));
        assert_eq!(a * 2, Time::from_ns(6));
        assert_eq!(a / 3, Time::from_ns(1));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.abs_diff(b), Time::from_ns(2));
        assert_eq!(b.abs_diff(a), Time::from_ns(2));
    }

    #[test]
    fn display_pads_picoseconds() {
        assert_eq!(format!("{}", Time::from_ps(1_005)), "1.005ns");
        assert_eq!(format!("{}", Time::ZERO), "0.000ns");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_ns(1), Time::from_ns(2)].into_iter().sum();
        assert_eq!(total, Time::from_ns(3));
    }
}
