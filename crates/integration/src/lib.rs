//! Integration-test host crate; tests live in the top-level `tests/` directory.
