//! Experiment E8 — metastability robustness (paper Sections 1, 3.2).
//!
//! The paper: "The current designs use only a pair of synchronizing
//! latches; however, for arbitrary robustness, the designer might use more
//! than two." These tests check both directions: an *under*-synchronized
//! FIFO corrupts under a hostile metastability model, while the paper's
//! two stages (and deeper) survive it; and the analytical MTBF grows
//! exponentially with depth.

use mtf_core::env::{SyncConsumer, SyncProducer};
use mtf_core::{FifoParams, MixedClockFifo};
use mtf_gates::{Builder, CellDelays};
use mtf_sim::{mtbf_seconds, ClockGen, MetaModel, Simulator, Time, ViolationKind};

/// A hostile flop: wide vulnerability window, slow settling — makes
/// synchronizer failures visible in microseconds of simulated time. The
/// window is deliberately huge (1.5 ns): the detectors' raw outputs are
/// recomputed by put-domain events right after most get-domain changes, so
/// only a wide window reliably catches the drifting cross-domain
/// transition as the *last* change before a sampling edge.
fn hostile() -> MetaModel {
    MetaModel {
        window: Time::from_ps(1_500),
        tau: Time::from_ps(2_500),
        max_settle: Time::from_ps(25_000),
    }
}

/// One plesiochronous transfer; returns whether the stream survived and
/// how many metastable samplings occurred.
fn transfer(seed: u64, stages: usize, meta: MetaModel) -> (bool, usize) {
    let mut sim = Simulator::new(seed);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ps(9_973));
    ClockGen::builder(Time::from_ps(10_007))
        .phase(Time::from_ps(seed * 997 % 9_000))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::with_delays(&mut sim, CellDelays::hp06(), meta);
    let f = MixedClockFifo::build(
        &mut b,
        FifoParams::with_sync_stages(8, 8, stages),
        clk_put,
        clk_get,
    );
    drop(b.finish());
    let items: Vec<u64> = (0..40).collect();
    let pj = SyncProducer::spawn(
        &mut sim,
        "prod",
        clk_put,
        f.req_put,
        &f.data_put,
        f.full,
        items.clone(),
    );
    let cj = SyncConsumer::spawn(
        &mut sim,
        "cons",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
    );
    let ok =
        sim.run_until(Time::from_us(4)).is_ok() && pj.len() == items.len() && cj.values() == items;
    let events = sim.violations_of(ViolationKind::Metastability).count();
    (ok, events)
}

#[test]
fn single_stage_synchronizer_fails_under_hostile_model() {
    let fails = (0..10)
        .filter(|&s| !transfer(100 + s, 1, hostile()).0)
        .count();
    assert!(
        fails >= 5,
        "a 1-stage synchronizer should corrupt most hostile runs (failed {fails}/10)"
    );
}

#[test]
fn papers_two_stages_survive_the_same_model() {
    let mut total_events = 0;
    for s in 0..10 {
        let (ok, events) = transfer(100 + s, 2, hostile());
        assert!(ok, "seed {s}: two stages must survive");
        total_events += events;
    }
    // The runs were not trivially clean: metastable samplings did occur
    // (for some clock phases the beat misses the window — hence the sum).
    assert!(total_events > 0, "the hostile model must actually fire");
}

#[test]
fn deeper_chains_also_survive() {
    for stages in 3..=4 {
        for s in 0..4 {
            let (ok, _) = transfer(300 + s, stages, hostile());
            assert!(ok, "{stages} stages, seed {s}");
        }
    }
}

#[test]
fn realistic_model_is_clean_at_paper_depth() {
    for s in 0..5 {
        let (ok, _) = transfer(500 + s, 2, MetaModel::hp06());
        assert!(
            ok,
            "seed {s}: realistic flops, two stages: no failures expected"
        );
    }
}

#[test]
fn mtbf_grows_exponentially_per_stage() {
    let m = MetaModel::hp06();
    let period = Time::from_ns(2);
    let mtbf_at = |stages: u64| {
        let settle = Time::from_ps(period.as_ps() / 2) + period * (stages - 1);
        mtbf_seconds(settle, m.tau, m.window, 500e6, 500e6)
    };
    let per_stage = (2..=4)
        .map(|k| mtbf_at(k) / mtbf_at(k - 1))
        .collect::<Vec<_>>();
    let expected = (period.as_ps() as f64 / m.tau.as_ps() as f64).exp();
    for r in per_stage {
        assert!(
            (r / expected - 1.0).abs() < 1e-6,
            "each stage multiplies MTBF by e^(T/tau): {r:.3e} vs {expected:.3e}"
        );
    }
    // And the magnitude claim: 4 stages push MTBF past a millennium.
    assert!(mtbf_at(4) > 3.15e10);
}
