//! Property tests for the heterogeneous chain composer: any well-formed
//! chain spec — whatever mix of boundary designs, clock ratios, phases,
//! and depths — must deliver every item exactly once, in FIFO order,
//! with no deadlock.
//!
//! Failures persist their case seed to
//! `tests/chain_properties.proptest-regressions`; CI replays the
//! persisted seeds with `PROPTEST_CASES=1`.
//!
//! Every run goes through [`run_chain_sanitized`], so the kernel's
//! delta-race sanitizer rides along as a standing check: a chain draw
//! whose evaluation order reads a net in the same delta it is written
//! (read-then-write) fails the property even if the values happen to
//! come out right. Write-write hazards are tolerated — gate fan-in
//! legitimately drives one net twice per delta with the same resolved
//! value (same policy as `tests/determinism.rs`).

use mtf_lis::{run_chain_sanitized, ChainDrive, ChainRun, ChainSpec};
use mtf_sim::RaceHazardKind;
use proptest::prelude::*;

/// One boundary draw: clock ratio of the *next* segment in per-mille of
/// the base period (0.3×–3×), its phase in per-mille of its period, the
/// station count, and whether the boundary is a mixed-clock RS (`true`)
/// or a single-clock Carloni RS (`false` — which forces the next segment
/// onto the same clock, since `sync_rs` has no synchronizers).
type BoundaryDraw = (u64, u64, usize, bool);

/// Assembles a valid spec from raw draws. Returned specs always pass
/// `validate()`: every segment period stays within 0.3×–3× of the base
/// (far above the fixed 1 ns inter-station wire), and `sync_rs` is only
/// ever placed between segments of the identical domain.
fn assemble(
    base_period_ps: u64,
    capacity: usize,
    head_stations: usize,
    boundaries: &[BoundaryDraw],
) -> ChainSpec {
    let mut spec = ChainSpec::new(8, capacity).segment(base_period_ps, 0, head_stations);
    let mut prev = (base_period_ps, 0u64);
    for &(ratio_pm, phase_pm, stations, is_mcrs) in boundaries {
        if is_mcrs {
            let period = base_period_ps * ratio_pm / 1000;
            let phase = period * phase_pm / 1000;
            spec = spec
                .boundary("mixed_clock_rs")
                .segment(period, phase, stations);
            prev = (period, phase);
        } else {
            spec = spec.boundary("sync_rs").segment(prev.0, prev.1, stations);
        }
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 1–6 boundaries of random designs between segments of random
    /// ratio/phase: lossless FIFO delivery, clean and back-pressured.
    #[test]
    fn random_chains_deliver_everything_in_order(
        seed in 0u64..1_000_000,
        base_period_ps in 4_000u64..14_000,
        capacity in 3usize..10,
        head_stations in 1usize..4,
        boundaries in prop::collection::vec(
            (300u64..3_000, 0u64..1_000, 1usize..4, any::<bool>()),
            1..7,
        ),
    ) {
        let spec = assemble(base_period_ps, capacity, head_stations, &boundaries);
        prop_assert!(spec.validate().is_ok(), "draw must be valid: {:?}", spec.validate());

        let clean = sanitized(&spec, &ChainDrive::clean(seed, 20, spec.width))?;
        prop_assert_eq!(&clean.sent.len(), &20usize, "source wedged");
        prop_assert_eq!(&clean.delivered, &clean.sent, "clean run not lossless FIFO");

        // The same chain under adversarial sink back-pressure.
        let stalls = vec![(3, 11), (14, 15), (19, 40)];
        let stalled = sanitized(&spec, &ChainDrive::with_stalls(seed ^ 0x5a5a, 20, spec.width, stalls))?;
        prop_assert_eq!(&stalled.sent.len(), &20usize, "source wedged under stalls");
        prop_assert_eq!(&stalled.delivered, &stalled.sent, "stalled run not lossless FIFO");
    }

    /// The async-headed variant: a micropipeline bridged in by an ASRS in
    /// front of the same random sync chains.
    #[test]
    fn random_async_headed_chains_deliver_everything(
        seed in 0u64..1_000_000,
        base_period_ps in 6_000u64..14_000,
        capacity in 4usize..10,
        head_stages in 2usize..6,
        boundaries in prop::collection::vec(
            (400u64..2_500, 0u64..1_000, 1usize..3, any::<bool>()),
            0..3,
        ),
    ) {
        let spec = assemble(base_period_ps, capacity, 2, &boundaries)
            .with_async_head(head_stages);
        prop_assert!(spec.validate().is_ok(), "draw must be valid: {:?}", spec.validate());

        let run = sanitized(&spec, &ChainDrive::clean(seed, 15, spec.width))?;
        prop_assert_eq!(&run.sent.len(), &15usize, "producer wedged");
        prop_assert_eq!(&run.delivered, &run.sent, "async-headed run not lossless FIFO");
    }
}

/// Runs the chain with the delta-race sanitizer on; fails the case on a
/// build/run error or on any read-then-write hazard.
fn sanitized(
    spec: &ChainSpec,
    drive: &ChainDrive,
) -> Result<ChainRun, proptest::test_runner::TestCaseError> {
    let (run, hazards) = run_chain_sanitized(spec, drive).map_err(|e| {
        proptest::test_runner::TestCaseError::fail(format!("run_chain failed: {e}"))
    })?;
    let rtw: Vec<_> = hazards
        .iter()
        .filter(|h| h.kind == RaceHazardKind::ReadThenWrite)
        .collect();
    if !rtw.is_empty() {
        return Err(proptest::test_runner::TestCaseError::fail(format!(
            "delta-race sanitizer flagged {} read-then-write hazard(s): {:?}",
            rtw.len(),
            &rtw[..rtw.len().min(4)]
        )));
    }
    Ok(run)
}
