//! End-to-end determinism: two identically seeded runs of the same
//! mixed-clock transfer must agree on *everything observable* — delivered
//! data, per-net toggle counts, the violation log, and the kernel's event
//! count.
//!
//! This pins the event-kernel contract (see `crates/sim/src/event.rs`):
//! the timing wheel pops in exactly `(time, seq)` order, all randomness
//! flows from the simulator's single seeded RNG, and neither wake
//! coalescing nor the delta ring may change the order components observe.

use mtf_core::env::{SyncConsumer, SyncProducer};
use mtf_core::{FifoParams, MixedClockFifo};
use mtf_gates::{Builder, CellDelays};
use mtf_sim::{ClockGen, MetaModel, RaceHazard, RaceHazardKind, Simulator, Time};

/// Everything observable about one run, for whole-value comparison.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    delivered: Vec<u64>,
    toggles: Vec<(String, u64)>,
    violations: Vec<String>,
    events: u64,
}

/// One plesiochronous transfer under a deliberately harsh metastability
/// model (so the RNG actually gets consulted), summarised as a comparable
/// fingerprint.
fn fingerprint(seed: u64) -> Fingerprint {
    fingerprint_opts(seed, false).0
}

/// As [`fingerprint`], optionally with the delta-race sanitizer enabled;
/// also returns the hazards the sanitizer recorded.
fn fingerprint_opts(seed: u64, sanitize: bool) -> (Fingerprint, Vec<RaceHazard>) {
    let harsh = MetaModel {
        window: Time::from_ps(400),
        tau: Time::from_ps(2_500),
        max_settle: Time::from_ps(25_000),
    };
    let mut sim = Simulator::new(seed);
    if sanitize {
        sim.enable_race_sanitizer();
    }
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ps(9_973));
    ClockGen::builder(Time::from_ps(10_007))
        .phase(Time::from_ps(seed % 9_000))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::with_delays(&mut sim, CellDelays::hp06(), harsh);
    let f = MixedClockFifo::build(
        &mut b,
        FifoParams::with_sync_stages(8, 8, 2),
        clk_put,
        clk_get,
    );
    drop(b.finish());
    let items: Vec<u64> = (0..40).collect();
    let _pj = SyncProducer::spawn(
        &mut sim,
        "prod",
        clk_put,
        f.req_put,
        &f.data_put,
        f.full,
        items.clone(),
    );
    let cj = SyncConsumer::spawn(
        &mut sim,
        "cons",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
    );
    sim.run_until(Time::from_us(5)).expect("simulation runs");

    let toggles: Vec<(String, u64)> = (0..sim.net_count())
        .map(|i| {
            let n = mtf_sim::NetId::from_index(i);
            (sim.net_name(n).to_string(), sim.toggles(n))
        })
        .collect();
    let violations: Vec<String> = sim.violations().iter().map(|v| v.to_string()).collect();
    let fp = Fingerprint {
        delivered: cj.values(),
        toggles,
        violations,
        events: sim.stats().events_processed,
    };
    (fp, sim.race_hazards())
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let a = fingerprint(11);
    let b = fingerprint(11);
    assert_eq!(
        a.delivered, b.delivered,
        "delivered data differs between identical runs"
    );
    assert_eq!(
        a.toggles, b.toggles,
        "toggle counts differ between identical runs"
    );
    assert_eq!(
        a.violations, b.violations,
        "violation logs differ between identical runs"
    );
    assert_eq!(
        a.events, b.events,
        "event counts differ between identical runs"
    );
}

#[test]
fn sanitized_run_is_passive_and_race_free() {
    // The delta-race sanitizer must be purely observational: a sanitized
    // run fingerprints identically to a plain run, and the gate-level
    // mixed-clock transfer — where every cell has a nonzero propagation
    // delay — must show no stale same-instant reads. (Write/write records
    // are tolerated: a tri-state handoff on the shared get-data bus may
    // legitimately land two contribution changes in one instant.)
    let plain = fingerprint(11);
    let (sanitized, hazards) = fingerprint_opts(11, true);
    assert_eq!(
        plain, sanitized,
        "enabling the sanitizer changed observable behaviour"
    );
    let stale: Vec<&RaceHazard> = hazards
        .iter()
        .filter(|h| h.kind == RaceHazardKind::ReadThenWrite)
        .collect();
    assert!(
        stale.is_empty(),
        "stale same-instant reads in the mixed-clock transfer: {stale:#?}"
    );
}

#[test]
fn different_seeds_actually_diverge() {
    // Sanity check that the fingerprint is sensitive at all: under the
    // harsh metastability model, different seeds shift the get-clock
    // phase (by `seed % 9000` ps — pick seeds far apart) and the
    // settling draws, so *something* observable moves.
    let a = fingerprint(11);
    let b = fingerprint(7_477);
    assert_ne!(
        a, b,
        "fingerprint is insensitive to the seed — the test proves nothing"
    );
}
