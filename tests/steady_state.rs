//! Experiment E10 — the paper's "no synchronization overhead" claim
//! (Section 1): "assuming appropriate buffer capacity is used, in
//! steady-state operation the designs have no synchronization overhead —
//! each read and write operation can be completed in one cycle."

use mtf_async::FourPhaseProducer;
use mtf_core::env::{PacketSink, PacketSource, SyncConsumer, SyncProducer};
use mtf_core::{AsyncSyncFifo, FifoParams, MixedClockFifo, MixedClockRelayStation};
use mtf_gates::Builder;
use mtf_sim::{ClockGen, Simulator, Time};

/// Fraction of consecutive journal entries exactly one `period` apart,
/// over the middle of the run.
fn back_to_back_fraction(times: &[Time], period_ps: u64) -> f64 {
    assert!(times.len() > 40, "need a steady-state window");
    let mid = &times[times.len() / 4..times.len() * 3 / 4];
    let hits = mid
        .windows(2)
        .filter(|w| (w[1] - w[0]).as_ps() == period_ps)
        .count();
    hits as f64 / (mid.len() - 1) as f64
}

#[test]
fn mixed_clock_fifo_one_op_per_cycle_both_sides() {
    let mut sim = Simulator::new(1);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    // Identical frequency, skewed phase: the classic "same speed, different
    // clock tree" SoC case. With 8 places the synchronizer lag is fully
    // hidden.
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ns(10));
    ClockGen::builder(Time::from_ns(10))
        .phase(Time::from_ps(4_300))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    let f = MixedClockFifo::build(&mut b, FifoParams::new(8, 8), clk_put, clk_get);
    drop(b.finish());
    let items: Vec<u64> = (0..200).collect();
    let pj = SyncProducer::spawn(
        &mut sim,
        "prod",
        clk_put,
        f.req_put,
        &f.data_put,
        f.full,
        items.clone(),
    );
    let cj = SyncConsumer::spawn(
        &mut sim,
        "cons",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
    );
    sim.run_until(Time::from_us(6)).unwrap();
    assert_eq!(cj.values(), items);
    let put_b2b = back_to_back_fraction(&pj.times(), 10_000);
    let get_b2b = back_to_back_fraction(&cj.times(), 10_000);
    assert!(
        put_b2b > 0.95,
        "puts complete every cycle (got {put_b2b:.2})"
    );
    assert!(
        get_b2b > 0.95,
        "gets complete every cycle (got {get_b2b:.2})"
    );
}

#[test]
fn mcrs_streams_one_packet_per_cycle() {
    let mut sim = Simulator::new(2);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ns(10));
    ClockGen::builder(Time::from_ns(10))
        .phase(Time::from_ps(2_900))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    let rs = MixedClockRelayStation::build(&mut b, FifoParams::new(8, 8), clk_put, clk_get);
    drop(b.finish());
    let packets: Vec<Option<u64>> = (0..200).map(Some).collect();
    let _sj = PacketSource::spawn(
        &mut sim,
        "src",
        clk_put,
        rs.valid_in,
        &rs.data_put,
        rs.stop_out,
        packets,
    );
    let kj = PacketSink::spawn(
        &mut sim,
        "sink",
        clk_get,
        &rs.data_get,
        rs.valid_get,
        rs.stop_in,
        vec![],
    );
    sim.run_until(Time::from_us(6)).unwrap();
    assert_eq!(kj.values(), (0..200).collect::<Vec<u64>>());
    let b2b = back_to_back_fraction(&kj.times(), 10_000);
    assert!(b2b > 0.95, "valid packet every get cycle (got {b2b:.2})");
}

#[test]
fn async_sync_get_side_has_no_overhead() {
    // A fast async producer keeps the FIFO non-empty; the synchronous get
    // side must then deliver one item per clock, exactly as in the
    // mixed-clock design (Table 1's identical get columns).
    let mut sim = Simulator::new(3);
    let clk_get = sim.net("clk_get");
    ClockGen::builder(Time::from_ns(10))
        .phase(Time::from_ps(1_100))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    let f = AsyncSyncFifo::build(&mut b, FifoParams::new(8, 8), clk_get);
    drop(b.finish());
    let items: Vec<u64> = (0..200).collect();
    let _ph = FourPhaseProducer::spawn(
        &mut sim,
        "prod",
        f.put_req,
        f.put_ack,
        &f.put_data,
        items.clone(),
        Time::from_ps(300),
        Time::ZERO,
    );
    let cj = SyncConsumer::spawn(
        &mut sim,
        "cons",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
    );
    sim.run_until(Time::from_us(8)).unwrap();
    assert_eq!(cj.values(), items);
    let b2b = back_to_back_fraction(&cj.times(), 10_000);
    assert!(b2b > 0.95, "one dequeue per cycle (got {b2b:.2})");
}

#[test]
fn undersized_fifo_does_cost_throughput() {
    // The inverse claim: with capacity too small to hide the synchronizer
    // lag, throughput drops below one op per cycle — the "appropriate
    // buffer capacity" qualifier is real.
    let mut sim = Simulator::new(4);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ns(10));
    ClockGen::builder(Time::from_ns(10))
        .phase(Time::from_ps(4_300))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    // Capacity 3 (the minimum): detectors keep one cell in reserve and the
    // sync lag eats the rest.
    let f = MixedClockFifo::build(&mut b, FifoParams::new(3, 8), clk_put, clk_get);
    drop(b.finish());
    let items: Vec<u64> = (0..120).collect();
    let _pj = SyncProducer::spawn(
        &mut sim,
        "prod",
        clk_put,
        f.req_put,
        &f.data_put,
        f.full,
        items.clone(),
    );
    let cj = SyncConsumer::spawn(
        &mut sim,
        "cons",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
    );
    sim.run_until(Time::from_us(20)).unwrap();
    assert_eq!(cj.values(), items, "still correct, just slower");
    let b2b = back_to_back_fraction(&cj.times(), 10_000);
    assert!(
        b2b < 0.9,
        "a 3-place FIFO cannot sustain full rate (got {b2b:.2})"
    );
}
