//! Registry-driven conformance: the golden-queue check (`fifo_transfer`)
//! over **every** design in [`DesignRegistry::standard`] — the paper's six
//! designs *and* the four related-work baselines — at several shapes.
//!
//! This is the design layer's payoff: a newly registered design is
//! conformance-tested by this loop with no new test code, and a design
//! that cannot support a shape must say so through
//! [`MixedTimingDesign::supports`] rather than crash.
//!
//! [`MixedTimingDesign::supports`]: mtf_core::MixedTimingDesign::supports

use mtf_bench::harness::{fifo_transfer, TransferConfig};
use mtf_core::design::DesignRegistry;
use mtf_core::FifoParams;
use mtf_sim::Time;

#[test]
fn every_registered_design_passes_the_golden_queue() {
    let registry = DesignRegistry::standard();
    let mut covered = 0;
    let mut declined = 0;
    for design in registry.iter() {
        for &(capacity, width) in &[(4usize, 8usize), (6, 8), (8, 16)] {
            let params = FifoParams::new(capacity, width);
            if let Err(why) = design.supports(params) {
                // Declared inability (gray_pointer wants power-of-two
                // capacities) is the contract; silent wrong answers are not.
                assert!(
                    !capacity.is_power_of_two(),
                    "{} refused a supported shape {params}: {why}",
                    design.kind().name()
                );
                declined += 1;
                continue;
            }
            let mask = (1u64 << width) - 1;
            let items: Vec<u64> = (0..24u64)
                .map(|i| (i * 37 + capacity as u64) & mask)
                .collect();
            let cfg = TransferConfig {
                producer_phase: Time::from_ps(300),
                getter_phase: Time::from_ps(500),
                bubble_offset: Some(1),
                stalls: vec![(12, 20)],
                ..TransferConfig::plain(11, 10_000, 12_700, Time::from_us(80))
            };
            let out = fifo_transfer(design, params, &items, &cfg);
            assert_eq!(out, items, "{} at {params}", design.kind().name());
            covered += 1;
        }
    }
    assert_eq!(covered + declined, registry.len() * 3);
    assert!(declined >= 1, "the capacity gate must have been exercised");
}

/// The chain-splice dimension of conformance: every design whose two
/// interfaces both speak the relay stream protocol
/// ([`DesignRegistry::streams`]) must also work as the boundary of a
/// 2-boundary heterogeneous chain — spliced between three single-clock
/// relay segments and verified end-to-end against its own latency and
/// throughput predictions, clean and under sink back-pressure.
#[test]
fn every_stream_design_splices_into_a_two_boundary_chain() {
    let streams = DesignRegistry::streams();
    assert!(
        streams.iter().any(|d| d.kind().name() == "mixed_clock_rs"),
        "the paper's MCRS must be a stream design"
    );
    for design in streams.iter() {
        let name = design.kind().name();
        let hetero = mtf_lis::chain::ChainSpec::new(8, 4)
            .segment(10_000, 0, 2)
            .boundary(name)
            .segment(12_600, 1_900, 1)
            .boundary(name)
            .segment(9_300, 4_100, 2);
        // Single-clock boundary designs (sync_rs) must *refuse* distinct
        // domains through validation, then pass the same splice in a
        // homogeneous chain; multi-clock designs take the hetero chain.
        let spec = match hetero.validate() {
            Ok(()) => hetero,
            Err(why) => {
                assert!(
                    why.contains("cannot bridge distinct domains"),
                    "{name} rejected the chain for the wrong reason: {why}"
                );
                mtf_lis::chain::ChainSpec::new(8, 4)
                    .segment(10_000, 0, 2)
                    .boundary(name)
                    .segment(10_000, 0, 1)
                    .boundary(name)
                    .segment(10_000, 0, 2)
            }
        };
        let v = mtf_lis::chain::verify_chain(&spec, 40)
            .unwrap_or_else(|e| panic!("{name} failed 2-boundary chain verification: {e}"));
        assert_eq!(v.clean.report.boundaries.len(), 2, "{name}");
    }
}

#[test]
fn registry_lookup_round_trips() {
    let registry = DesignRegistry::standard();
    for design in registry.iter() {
        let name = design.kind().name();
        let found = DesignRegistry::get(name).expect("registered name resolves");
        assert_eq!(found.kind(), design.kind());
        assert_eq!(DesignRegistry::of(design.kind()).kind(), design.kind());
    }
    assert!(DesignRegistry::get("no_such_design").is_none());
}
