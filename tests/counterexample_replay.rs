//! Counterexamples must be real: a checker refutation is only evidence
//! if its trace reproduces the predicted violation on the actual
//! machinery. Each injected regression here is refuted by the model
//! checker *and* replayed — the STG trace against the same `StgMachine`
//! interpreter the FIFO netlists instantiate, the FIFO hazard at gate
//! level under the hostile metastability model — while the intact
//! originals replay silently.

use mtf_async::dv_as_spec;
use mtf_core::FlagDiscipline;
use mtf_mc::designs::BUDGET;
use mtf_mc::replay::{replay_fifo_hazard, replay_stg};
use mtf_mc::{check_fifo, check_stg, FifoModel, Property};

/// The intact DV controller: every shortest trace the checker produced
/// is a legal input schedule, so driving one at the interpreter raises
/// no protocol violation.
#[test]
fn clean_controller_traces_replay_silently() {
    let spec = dv_as_spec(0);
    let check = check_stg(&spec).expect("checkable");
    assert!(check.is_clean());
    // The deepest state's trace exercises the longest input schedule.
    let deepest = check.space.len() - 1;
    let out = replay_stg(&spec, &check.space.trace_to(deepest));
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}

/// The injected controller regression: `re−` forgets to produce the
/// token that re-arms `ei+`. The checker refutes deadlock-freedom with a
/// shortest trace to the dead marking; replaying that trace plus one
/// probe edge makes the interpreter reject the probe — the machine is
/// wedged exactly where the checker said, with the cell never re-offered.
#[test]
fn dropped_arc_counterexample_replays_to_a_wedged_machine() {
    let mut spec = dv_as_spec(0);
    spec.transitions[6].produce.clear();
    let check = check_stg(&spec).expect("checkable");
    let v = check.verdict(Property::DeadlockFree).expect("checked");
    let cx = v
        .counterexample()
        .expect("dropped arc must refute deadlock-freedom");
    let mut trace = cx.trace.clone();
    trace.push("we+".into());
    let out = replay_stg(&spec, &trace);
    assert!(
        out.violations.iter().any(|m| m.contains("we+")),
        "the probe edge must be rejected by the dead machine: {:?}",
        out.violations
    );
    assert_eq!(out.level("ei"), Some(false), "cell never re-offered");
}

/// The PR-4 regression, now with a formal root cause: at one synchronizer
/// stage the checker refutes losslessness via a `put·meta` half-commit
/// (a metastable full-flag sample resolves against the raw state and the
/// put logic splits), and the gate-level replay under the hostile flop
/// model corrupts the stream for the same depth. At the paper's two
/// stages the checker proves losslessness and every replay survives.
#[test]
fn single_flop_hazard_refutation_replays_at_gate_level() {
    let broken = FifoModel::new(
        "mixed_clock·c4·s1",
        4,
        FlagDiscipline::Anticipating,
        FlagDiscipline::Bimodal,
        1,
    );
    let check = check_fifo(&broken, BUDGET).expect("in budget");
    let v = check.verdict(Property::Lossless).expect("checked");
    let cx = v
        .counterexample()
        .expect("one stage must refute losslessness");
    assert!(
        cx.trace.iter().any(|l| l.contains("put·meta")),
        "the refutation must pass through the metastable half-commit: {:?}",
        cx.trace
    );

    // Gate level, same depth, hostile flops: the stream corrupts for
    // most seeds (the metastability.rs seed band), never for none.
    let failures = (100..106)
        .filter(|&seed| !replay_fifo_hazard(1, seed).survived)
        .count();
    assert!(
        failures >= 1,
        "a 1-stage synchronizer must corrupt at least one hostile run"
    );

    // The paper's depth: checker proves, replays survive — same seeds.
    let fixed = FifoModel::new(
        "mixed_clock·c4·s2",
        4,
        FlagDiscipline::Anticipating,
        FlagDiscipline::Bimodal,
        2,
    );
    let check = check_fifo(&fixed, BUDGET).expect("in budget");
    assert!(
        check.verdict(Property::Lossless).expect("checked").holds(),
        "two stages must prove lossless"
    );
    let mut meta_events = 0;
    for seed in 100..106 {
        let out = replay_fifo_hazard(2, seed);
        assert!(out.survived, "seed {seed}: two stages must survive");
        meta_events += out.metastable_events;
    }
    // The survivals were not vacuous: within this seed band the hostile
    // model does fire, and the second flop absorbs the settling.
    assert!(meta_events > 0, "the hostile model must actually fire");
}
