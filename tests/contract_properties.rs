//! Derived ≡ declared, everywhere: the contract-inference engine must
//! read the declared flag disciplines, synchronizer depths, detector
//! windows and capacities back off the elaborated netlist at *every*
//! supported parameter point, not just the stock 4×8×2 the golden
//! reports pin. A point where the derivation drifts from the
//! declaration would mean either the generator wires a different
//! interface than the registry promises (a real design bug) or the
//! inference mis-reads a legal structure (a lint bug) — both are worth
//! a persisted seed.
//!
//! Failures persist their case seed to
//! `tests/contract_properties.proptest-regressions`; CI replays the
//! persisted seeds with `PROPTEST_CASES=1`.

use mtf_core::design::DesignRegistry;
use mtf_core::{FifoParams, MixedTimingDesign};
use mtf_lint::infer_contract;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every registry design, swept over capacity × width × synchronizer
    /// depth, derives exactly its declared interface contract.
    #[test]
    fn derived_contract_matches_declared_at_every_supported_point(
        design_sel in 0usize..DesignRegistry::standard().iter().count(),
        capacity in 3usize..=8,
        width in 1usize..=16,
        sync_stages in 1usize..=4,
    ) {
        let design: &'static dyn MixedTimingDesign = DesignRegistry::standard()
            .iter()
            .nth(design_sel)
            .expect("selector in range");
        // The detector generators require capacity > window (the cyclic
        // AND groups must outnumber the occupancy window, or full/empty
        // could never deassert); stay on the supported side.
        if capacity <= sync_stages.max(2) {
            return Ok(());
        }
        let params = FifoParams::with_sync_stages(capacity, width, sync_stages);
        // Per-design envelopes (e.g. gray_pointer's power-of-two
        // capacity) are the design's own business: skip unsupported
        // points exactly as every conformance suite does.
        if design.supports(params).is_err() {
            return Ok(());
        }

        let contract = infer_contract(design, params)
            .unwrap_or_else(|e| panic!("{}: {e}", design.kind().name()));
        let mismatches = contract.diff(sync_stages);
        prop_assert!(
            mismatches.is_empty(),
            "{} at {params}: derived contract drifts from declaration:\n{}",
            design.kind().name(),
            mismatches
                .iter()
                .map(|m| format!("  {m}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        // Where a capacity is derivable at all, it must track the
        // parameter, not merely be self-consistent. Behavioural designs
        // (seizovic, sync_rs) place no storage cells to count — the
        // persisted seed in the regressions file is the sweep finding
        // exactly that edge.
        if let Some(derived) = contract.capacity {
            prop_assert_eq!(derived, capacity);
        }
    }
}
