//! Simulation ⊆ formal: random walks through the *same* transition
//! relations the model checker enumerates must only ever visit states
//! the checker proved reachable. A walk that escapes the checked space
//! would mean the exhaustive verdicts are vacuous — the checker proved
//! properties of some other machine.
//!
//! The STG walks use the pure firing API (`marking_vec` /
//! `enabled_transitions` / `fire` on [`mtf_async::StgSpec`]) — the same
//! functions the event-driven interpreter executes — so the containment
//! check ties the checker to the running controllers, not to a private
//! re-implementation. The FIFO walks step the abstract protocol models
//! through their own `successors` relation with proptest-drawn choices.
//!
//! Failures persist their case seed to
//! `tests/formal_properties.proptest-regressions`; CI replays the
//! persisted seeds with `PROPTEST_CASES=1`.

use mtf_async::{dv_as_spec, dv_sa_spec};
use mtf_mc::designs::{check_all, fifo_model, formal_capacities, ALL_DESIGNS, BUDGET};
use mtf_mc::{check_fifo, check_stg, TransitionSystem};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of environment and autonomous controller edges
    /// the pure firing API permits stays inside the checker's reachable
    /// (marking, levels) set.
    #[test]
    fn stg_random_walks_stay_in_the_checked_space(
        which in 0usize..2,
        choices in proptest::collection::vec(0usize..16, 1..120),
    ) {
        let spec = if which == 0 { dv_as_spec(0) } else { dv_sa_spec(0) };
        let check = check_stg(&spec).expect("checkable");
        prop_assert!(check.is_clean(), "{}", check.name);
        let mut marking = spec.marking_vec();
        let mut levels: Vec<bool> = spec.signals.iter().map(|s| s.init).collect();
        prop_assert!(check.contains(&marking, &levels), "initial state unreachable?");
        for &c in &choices {
            // Marking-enabled *and* edge-consistent — for a spec whose
            // consistency is proven these coincide, but filtering keeps
            // the walk honest even on a broken spec.
            let enabled: Vec<usize> = spec
                .enabled_transitions(&marking)
                .filter(|&t| levels[spec.transitions[t].signal] != spec.transitions[t].rising)
                .collect();
            if enabled.is_empty() {
                break;
            }
            let t = enabled[c % enabled.len()];
            spec.fire(&mut marking, t).expect("enabled transition fires");
            levels[spec.transitions[t].signal] = spec.transitions[t].rising;
            prop_assert!(
                check.contains(&marking, &levels),
                "{}: walk left the checked space after {}",
                spec.name,
                spec.transition_label(t)
            );
        }
    }

    /// Any path through a registry design's abstract protocol model —
    /// puts, gets, metastable resolutions, idle edges, in any order the
    /// model permits — stays inside the exhaustively explored space.
    #[test]
    fn fifo_random_walks_stay_in_the_checked_space(
        design in 0usize..11,
        choices in proptest::collection::vec(0usize..16, 1..200),
    ) {
        let kind = ALL_DESIGNS[design];
        let cap = *formal_capacities(kind).last().expect("covered");
        let model = fifo_model(kind, cap);
        let check = check_fifo(&model, BUDGET).expect("in budget");
        prop_assert!(check.is_clean(), "{}", model.name);
        let mut s = model.initial();
        prop_assert!(check.space.contains(&s));
        for &c in &choices {
            let succ = model.successors(&s);
            if succ.is_empty() {
                break; // stream complete (pure-direct models terminate)
            }
            let (label, next) = succ[c % succ.len()].clone();
            prop_assert!(
                check.space.contains(&next),
                "{}: walk left the checked space after {label}",
                model.name
            );
            s = next;
        }
    }
}

/// Two full registry sweeps discover the same states in the same order
/// and reconstruct identical shortest traces — exploration has no hidden
/// RNG or clock, so counterexamples are reproducible by construction.
#[test]
fn registry_sweep_is_deterministic() {
    let a = check_all().expect("in budget");
    let b = check_all().expect("in budget");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.check.space.len(),
            y.check.space.len(),
            "{}",
            x.kind.name()
        );
        assert_eq!(
            x.check.space.edge_count(),
            y.check.space.edge_count(),
            "{}",
            x.kind.name()
        );
        let last = x.check.space.len() - 1;
        assert_eq!(
            x.check.space.trace_to(last),
            y.check.space.trace_to(last),
            "{}: shortest trace to the last-discovered state drifted",
            x.kind.name()
        );
    }
}
