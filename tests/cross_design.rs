//! Property-based FIFO-semantics check across the whole design family
//! (the four paper designs plus the two extensions): whatever goes in
//! comes out — in order, exactly once — for randomized payloads, shapes
//! and clock configurations.

use mtf_async::{FourPhaseGetter, FourPhaseProducer};
use mtf_core::env::{PacketSink, PacketSource, SyncConsumer, SyncProducer};
use mtf_core::{
    AsyncAsyncFifo, AsyncSyncFifo, AsyncSyncRelayStation, FifoParams, MixedClockFifo,
    MixedClockRelayStation, SyncAsyncFifo,
};
use mtf_gates::Builder;
use mtf_sim::{ClockGen, Simulator, Time};
use proptest::prelude::*;

const HORIZON: Time = Time::from_us(60);

fn mixed_clock(seed: u64, p: FifoParams, t_put: u64, t_get: u64, items: &[u64]) -> Vec<u64> {
    let mut sim = Simulator::new(seed);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ps(t_put));
    ClockGen::builder(Time::from_ps(t_get))
        .phase(Time::from_ps(seed % t_get))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    let f = MixedClockFifo::build(&mut b, p, clk_put, clk_get);
    drop(b.finish());
    let _pj = SyncProducer::spawn(
        &mut sim,
        "p",
        clk_put,
        f.req_put,
        &f.data_put,
        f.full,
        items.to_vec(),
    );
    let cj = SyncConsumer::spawn(
        &mut sim,
        "c",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
    );
    sim.run_until(HORIZON).unwrap();
    cj.values()
}

fn async_sync(seed: u64, p: FifoParams, t_get: u64, items: &[u64]) -> Vec<u64> {
    let mut sim = Simulator::new(seed);
    let clk_get = sim.net("clk_get");
    ClockGen::builder(Time::from_ps(t_get))
        .phase(Time::from_ps(seed % t_get))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    let f = AsyncSyncFifo::build(&mut b, p, clk_get);
    drop(b.finish());
    let _ph = FourPhaseProducer::spawn(
        &mut sim,
        "p",
        f.put_req,
        f.put_ack,
        &f.put_data,
        items.to_vec(),
        Time::from_ps(400),
        Time::from_ps(seed % 3_000),
    );
    let cj = SyncConsumer::spawn(
        &mut sim,
        "c",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
    );
    sim.run_until(HORIZON).unwrap();
    cj.values()
}

fn sync_async(seed: u64, p: FifoParams, t_put: u64, items: &[u64]) -> Vec<u64> {
    let mut sim = Simulator::new(seed);
    let clk_put = sim.net("clk_put");
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ps(t_put));
    let mut b = Builder::new(&mut sim);
    let f = SyncAsyncFifo::build(&mut b, p, clk_put);
    drop(b.finish());
    let _pj = SyncProducer::spawn(
        &mut sim,
        "p",
        clk_put,
        f.req_put,
        &f.data_put,
        f.full,
        items.to_vec(),
    );
    let gh = FourPhaseGetter::spawn(
        &mut sim,
        "g",
        f.get_req,
        f.get_ack,
        &f.get_data,
        items.len(),
        Time::from_ps(seed % 2_000),
    );
    sim.run_until(HORIZON).unwrap();
    gh.journal().values()
}

fn async_async(seed: u64, p: FifoParams, items: &[u64]) -> Vec<u64> {
    let mut sim = Simulator::new(seed);
    let mut b = Builder::new(&mut sim);
    let f = AsyncAsyncFifo::build(&mut b, p);
    drop(b.finish());
    let _ph = FourPhaseProducer::spawn(
        &mut sim,
        "p",
        f.put_req,
        f.put_ack,
        &f.put_data,
        items.to_vec(),
        Time::from_ps(400),
        Time::from_ps(seed % 2_500),
    );
    let gh = FourPhaseGetter::spawn(
        &mut sim,
        "g",
        f.get_req,
        f.get_ack,
        &f.get_data,
        items.len(),
        Time::from_ps((seed * 7) % 2_500),
    );
    sim.run_until(HORIZON).unwrap();
    gh.journal().values()
}

fn mcrs(seed: u64, p: FifoParams, t_put: u64, t_get: u64, items: &[u64]) -> Vec<u64> {
    let mut sim = Simulator::new(seed);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ps(t_put));
    ClockGen::builder(Time::from_ps(t_get))
        .phase(Time::from_ps(seed % t_get))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    let rs = MixedClockRelayStation::build(&mut b, p, clk_put, clk_get);
    drop(b.finish());
    // Mix bubbles into the stream pseudo-randomly.
    let mut packets = Vec::new();
    for (i, &v) in items.iter().enumerate() {
        if (i as u64 + seed).is_multiple_of(3) {
            packets.push(None);
        }
        packets.push(Some(v));
    }
    let _sj = PacketSource::spawn(
        &mut sim,
        "s",
        clk_put,
        rs.valid_in,
        &rs.data_put,
        rs.stop_out,
        packets,
    );
    let kj = PacketSink::spawn(
        &mut sim,
        "k",
        clk_get,
        &rs.data_get,
        rs.valid_get,
        rs.stop_in,
        vec![(seed % 40 + 10, seed % 40 + 25)],
    );
    sim.run_until(HORIZON).unwrap();
    kj.values()
}

fn asrs(seed: u64, p: FifoParams, t_get: u64, items: &[u64]) -> Vec<u64> {
    let mut sim = Simulator::new(seed);
    let clk_get = sim.net("clk_get");
    ClockGen::builder(Time::from_ps(t_get))
        .phase(Time::from_ps(seed % t_get))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    let rs = AsyncSyncRelayStation::build(&mut b, p, clk_get);
    drop(b.finish());
    let _ph = FourPhaseProducer::spawn(
        &mut sim,
        "p",
        rs.put_req,
        rs.put_ack,
        &rs.put_data,
        items.to_vec(),
        Time::from_ps(400),
        Time::ZERO,
    );
    let kj = PacketSink::spawn(
        &mut sim,
        "k",
        clk_get,
        &rs.data_get,
        rs.valid_get,
        rs.stop_in,
        vec![(seed % 30 + 5, seed % 30 + 20)],
    );
    sim.run_until(HORIZON).unwrap();
    kj.values()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_design_is_a_fifo(
        seed in 0u64..10_000,
        capacity in 3usize..9,
        width_sel in 0usize..2,
        n_items in 1usize..30,
        t_put in 8_000u64..14_000,
        ratio_pct in 60u64..190,
    ) {
        let width = [8usize, 16][width_sel];
        let p = FifoParams::new(capacity, width);
        let mask = (1u64 << width) - 1;
        let items: Vec<u64> = (0..n_items as u64).map(|i| (i * 151 + seed) & mask).collect();
        let t_get = (t_put * ratio_pct / 100).max(t_put / 2 + 500).min(t_put * 2 - 500);

        prop_assert_eq!(mixed_clock(seed, p, t_put, t_get, &items), items.clone(), "mixed-clock");
        prop_assert_eq!(async_sync(seed, p, t_get, &items), items.clone(), "async-sync");
        prop_assert_eq!(sync_async(seed, p, t_put, &items), items.clone(), "sync-async");
        prop_assert_eq!(async_async(seed, p, &items), items.clone(), "async-async");
        prop_assert_eq!(mcrs(seed, p, t_put, t_get, &items), items.clone(), "MCRS");
        prop_assert_eq!(asrs(seed, p, t_get, &items), items, "ASRS");
    }
}
