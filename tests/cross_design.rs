//! Property-based FIFO-semantics check across the whole design family
//! (the four paper designs plus the two extensions): whatever goes in
//! comes out — in order, exactly once — for randomized payloads, shapes
//! and clock configurations.
//!
//! Every design goes through the same generic driver,
//! [`mtf_bench::harness::fifo_transfer`], with the per-design environment
//! variation expressed as a [`TransferConfig`]; the per-design simulator
//! schedules are identical to the pre-design-layer hand-wired drivers, so
//! the tracked regressions in `cross_design.proptest-regressions` replay
//! against the exact same event streams.

use mtf_bench::harness::{fifo_transfer, TransferConfig};
use mtf_core::design::{
    ASYNC_ASYNC, ASYNC_SYNC, ASYNC_SYNC_RS, MIXED_CLOCK, MIXED_CLOCK_RS, SYNC_ASYNC,
};
use mtf_core::FifoParams;
use mtf_sim::Time;
use proptest::prelude::*;

const HORIZON: Time = Time::from_us(60);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_design_is_a_fifo(
        seed in 0u64..10_000,
        capacity in 3usize..9,
        width_sel in 0usize..2,
        n_items in 1usize..30,
        t_put in 8_000u64..14_000,
        ratio_pct in 60u64..190,
    ) {
        let width = [8usize, 16][width_sel];
        let p = FifoParams::new(capacity, width);
        let mask = (1u64 << width) - 1;
        let items: Vec<u64> = (0..n_items as u64).map(|i| (i * 151 + seed) & mask).collect();
        let t_get = (t_put * ratio_pct / 100).max(t_put / 2 + 500).min(t_put * 2 - 500);

        let plain = TransferConfig::plain(seed, t_put, t_get, HORIZON);
        let async_sync = TransferConfig {
            producer_phase: Time::from_ps(seed % 3_000),
            ..plain.clone()
        };
        let sync_async = TransferConfig {
            getter_phase: Time::from_ps(seed % 2_000),
            ..plain.clone()
        };
        let async_async = TransferConfig {
            producer_phase: Time::from_ps(seed % 2_500),
            getter_phase: Time::from_ps((seed * 7) % 2_500),
            ..plain.clone()
        };
        let mcrs = TransferConfig {
            bubble_offset: Some(seed),
            stalls: vec![(seed % 40 + 10, seed % 40 + 25)],
            ..plain.clone()
        };
        let asrs = TransferConfig {
            stalls: vec![(seed % 30 + 5, seed % 30 + 20)],
            ..plain.clone()
        };

        prop_assert_eq!(fifo_transfer(&MIXED_CLOCK, p, &items, &plain), items.clone(), "mixed-clock");
        prop_assert_eq!(fifo_transfer(&ASYNC_SYNC, p, &items, &async_sync), items.clone(), "async-sync");
        prop_assert_eq!(fifo_transfer(&SYNC_ASYNC, p, &items, &sync_async), items.clone(), "sync-async");
        prop_assert_eq!(fifo_transfer(&ASYNC_ASYNC, p, &items, &async_async), items.clone(), "async-async");
        prop_assert_eq!(fifo_transfer(&MIXED_CLOCK_RS, p, &items, &mcrs), items.clone(), "MCRS");
        prop_assert_eq!(fifo_transfer(&ASYNC_SYNC_RS, p, &items, &asrs), items, "ASRS");
    }
}
