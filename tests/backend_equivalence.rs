//! Differential proof that the compiled-netlist backend is observationally
//! equivalent to the event-driven kernel.
//!
//! The compiled backend (`mtf_gates::install_compiled`) levelizes every
//! acyclic purely-synchronous region of a netlist and replaces its
//! per-cell event components with one straight-line engine; everything
//! else — async controllers, synchronizers with a live metastability
//! model, tri-states, behavioural macros — stays on the timing wheel.
//! The claim it must uphold: **no observable difference whatsoever**.
//! These tests hold the two backends to byte equality of
//!
//! * per-net toggle counts over the *whole* simulator (toggles are always
//!   counted, so this covers every net, not just probed ones),
//! * rendered timing violations,
//! * source/sink journals (values *and* timestamps),
//! * rendered VCD waveforms over every net of a design testbench,
//! * the chain composer's [`ChainFingerprint`] — including under
//!   `--shards 2` and with the delta-race sanitizer enabled,
//!
//! across every design in the registry, a sweep of heterogeneous chain
//! specs, and a proptest fuzzer drawing random chains, stall schedules
//! and clock ratios (failures persist to
//! `tests/backend_equivalence.proptest-regressions`; CI replays them
//! with `PROPTEST_CASES=1`).
//!
//! The negative space is pinned too: a netlist with combinational
//! feedback must be *refused* by the compiler with a diagnostic citing
//! the member cells, and the refused region must keep simulating
//! correctly on the event kernel.

use mtf_bench::harness::{fifo_transfer, Drain, Feed, Harness, TransferConfig};
use mtf_core::design::DesignRegistry;
use mtf_core::{FifoParams, InterfaceSpec, MixedTimingDesign};
use mtf_gates::{install_compiled, Builder};
use mtf_lis::{
    run_chain_sanitized_with_backend, run_chain_sharded_with_backend, verification_stalls,
    ChainDrive, ChainFingerprint, ChainSpec,
};
use mtf_sim::vcd::render_vcd;
use mtf_sim::{Backend, Logic, NetId, Probe, RaceHazardKind, SimStats, Simulator, Time};
use proptest::prelude::*;

/// Async micropipeline head into three sync domains with both boundary
/// designs — the same heterogeneous shape the sharding suite pins.
fn hetero_spec() -> ChainSpec {
    ChainSpec::new(8, 4)
        .with_async_head(3)
        .segment(9_000, 0, 2)
        .boundary("mixed_clock_rs")
        .segment(12_000, 3_000, 1)
        .boundary("sync_rs")
        .segment(12_000, 3_000, 1)
}

/// A plesiochronous two-domain chain (no async head): the pure
/// mixed-clock relay-station case.
fn two_domain_spec() -> ChainSpec {
    ChainSpec::new(8, 4)
        .segment(9_973, 0, 2)
        .boundary("mixed_clock_rs")
        .segment(10_007, 450, 2)
}

/// Runs `spec` single-shard on `backend` and returns the full-simulator
/// fingerprint plus the kernel counters (to prove the compiled engine
/// actually ran).
fn fp(spec: &ChainSpec, drive: &ChainDrive, backend: Backend) -> (ChainFingerprint, SimStats) {
    let run = run_chain_sharded_with_backend(spec, drive, 1, backend)
        .unwrap_or_else(|e| panic!("{backend} run failed: {e}"));
    (run.fingerprint, run.shard_stats[0].sim)
}

#[test]
fn chain_fingerprints_are_backend_invariant() {
    for (label, spec) in [("hetero", hetero_spec()), ("two_domain", two_domain_spec())] {
        for (kind, drive) in [
            ("clean", ChainDrive::clean(11, 12, 8)),
            (
                "stalled",
                ChainDrive::with_stalls(23, 12, 8, verification_stalls()),
            ),
        ] {
            let (event, ev_stats) = fp(&spec, &drive, Backend::Event);
            let (compiled, co_stats) = fp(&spec, &drive, Backend::Compiled);
            assert_eq!(
                event, compiled,
                "{label}/{kind}: compiled backend diverged from the event kernel"
            );
            assert_eq!(event.digest(), compiled.digest());
            // The equality must be earned: the compiled engine ran, and the
            // event kernel never touched a compiled region.
            assert_eq!(ev_stats.compiled_gate_evals, 0, "{label}/{kind}");
            assert!(
                co_stats.compiled_gate_evals > 0,
                "{label}/{kind}: nothing was compiled — the differential is vacuous"
            );
        }
    }
}

#[test]
fn sharded_compiled_run_matches_single_shard_event_run() {
    let spec = two_domain_spec();
    let drive = ChainDrive::with_stalls(23, 10, 8, verification_stalls());
    let base = run_chain_sharded_with_backend(&spec, &drive, 1, Backend::Event).expect("event run");
    let sharded =
        run_chain_sharded_with_backend(&spec, &drive, 2, Backend::Compiled).expect("sharded run");
    assert_eq!(sharded.shards, 2);
    assert_eq!(
        sharded.fingerprint, base.fingerprint,
        "--shards 2 with the compiled backend diverged from the event kernel"
    );
    assert!(
        sharded
            .shard_stats
            .iter()
            .map(|s| s.sim.compiled_gate_evals)
            .sum::<u64>()
            > 0,
        "no shard compiled anything"
    );
}

#[test]
fn sanitizer_rides_along_on_the_compiled_backend() {
    let spec = hetero_spec();
    let drive = ChainDrive::with_stalls(7, 10, 8, verification_stalls());
    let (ev_run, _) =
        run_chain_sanitized_with_backend(&spec, &drive, Backend::Event).expect("event run");
    let (co_run, co_hazards) =
        run_chain_sanitized_with_backend(&spec, &drive, Backend::Compiled).expect("compiled run");
    assert_eq!(ev_run.sent, co_run.sent);
    assert_eq!(ev_run.delivered, co_run.delivered);
    assert_eq!(ev_run.report.boundaries, co_run.report.boundaries);
    // Same standing policy as `tests/chain_properties.rs`: the compiled
    // engine must not introduce a single same-instant read-then-write
    // ordering hazard (write-write with an agreeing value is legitimate
    // gate fan-in, there as here).
    let rtw: Vec<_> = co_hazards
        .iter()
        .filter(|h| h.kind == RaceHazardKind::ReadThenWrite)
        .collect();
    assert!(
        rtw.is_empty(),
        "compiled backend introduced read-then-write hazards: {rtw:?}"
    );
}

#[test]
fn registry_designs_transfer_identically_on_both_backends() {
    // `fifo_transfer` uses the default stochastic metastability model, so
    // this also proves the compiled backend leaves every RNG draw of the
    // event-resident synchronizers untouched.
    let registry = DesignRegistry::standard();
    let mut covered = 0;
    for design in registry.iter() {
        for &(capacity, width) in &[(4usize, 8usize), (8, 16)] {
            let params = FifoParams::new(capacity, width);
            if design.supports(params).is_err() {
                continue;
            }
            let mask = (1u64 << width) - 1;
            let items: Vec<u64> = (0..20u64).map(|i| (i * 31 + 5) & mask).collect();
            let cfg = |backend| TransferConfig {
                producer_phase: Time::from_ps(300),
                getter_phase: Time::from_ps(500),
                bubble_offset: Some(1),
                stalls: vec![(9, 14)],
                backend,
                ..TransferConfig::plain(13, 10_000, 12_700, Time::from_us(80))
            };
            let event = fifo_transfer(design, params, &items, &cfg(Backend::Event));
            let compiled = fifo_transfer(design, params, &items, &cfg(Backend::Compiled));
            assert_eq!(event, items, "{} at {params}", design.kind().name());
            assert_eq!(
                event,
                compiled,
                "{} at {params}: backends disagree",
                design.kind().name()
            );
            covered += 1;
        }
    }
    assert!(covered >= registry.len(), "sweep barely ran: {covered}");
}

/// Everything one simulator run exposes, for byte comparison.
struct Snapshot {
    delivered: Vec<u64>,
    toggles: Vec<(String, u64)>,
    violations: Vec<String>,
    vcd: String,
    stats: SimStats,
}

/// Builds `design` on `backend` with the calibrated (deterministic) gate
/// model, pushes 16 items through protocol-appropriate environments, and
/// snapshots every observable: per-net toggles, violations, delivered
/// values, and the VCD of **every net in the simulator**.
fn deep_snapshot(design: &dyn MixedTimingDesign, backend: Backend) -> Snapshot {
    let params = FifoParams::new(4, 8);
    let mut h = Harness::calibrated(7);
    h.use_backend(backend);
    h.clock_nets(design.clocking());
    if h.clk_put.is_some() {
        h.gen_put(Time::from_ps(10_000));
    }
    if h.clk_get.is_some() {
        h.gen_get_phased(Time::from_ps(12_700), Time::from_ps(3_100));
    }
    h.build(design, params);
    let items: Vec<u64> = (0..16u64).map(|i| (i * 29 + 3) & 0xff).collect();
    let feed = match h.ports().put_spec() {
        InterfaceSpec::SyncStream { .. } => Feed::Packets {
            packets: items.iter().map(|&v| Some(v)).collect(),
        },
        _ => Feed::Saturate {
            items: items.clone(),
            bundling: Time::from_ps(400),
            phase: Time::from_ps(300),
        },
    };
    h.feed("p", feed);
    let drain = match h.ports().get_spec() {
        InterfaceSpec::SyncStream { .. } => Drain::Sink {
            stalls: vec![(5, 9)],
        },
        _ => Drain::Consume {
            n: items.len() as u64,
            phase: Time::from_ps(500),
        },
    };
    let out = h.drain("c", drain);
    let probes: Vec<Probe> = (0..h.sim.net_count())
        .map(|i| {
            let net = NetId::from_index(i);
            h.sim.trace(net);
            Probe::scalar(h.sim.net_name(net).to_string(), net)
        })
        .collect();
    h.sim.run_until(Time::from_us(60)).expect("simulation runs");
    Snapshot {
        delivered: out.values(),
        toggles: (0..h.sim.net_count())
            .map(|i| {
                let net = NetId::from_index(i);
                (h.sim.net_name(net).to_string(), h.sim.toggles(net))
            })
            .collect(),
        violations: h.sim.violations().iter().map(|v| v.to_string()).collect(),
        vcd: render_vcd(&h.sim, &probes),
        stats: h.sim.stats(),
    }
}

#[test]
fn registry_designs_agree_net_for_net_and_in_vcd() {
    let registry = DesignRegistry::standard();
    let mut total_compiled_evals = 0u64;
    for design in registry.iter() {
        let name = design.kind().name();
        if design.supports(FifoParams::new(4, 8)).is_err() {
            continue;
        }
        let event = deep_snapshot(design, Backend::Event);
        let compiled = deep_snapshot(design, Backend::Compiled);
        assert_eq!(event.delivered, compiled.delivered, "{name}: journals");
        assert_eq!(event.toggles, compiled.toggles, "{name}: per-net toggles");
        assert_eq!(event.violations, compiled.violations, "{name}: violations");
        assert_eq!(event.vcd, compiled.vcd, "{name}: VCD waveforms");
        assert_eq!(event.stats.compiled_gate_evals, 0, "{name}");
        total_compiled_evals += compiled.stats.compiled_gate_evals;
    }
    assert!(
        total_compiled_evals > 0,
        "no registry design compiled a single gate — the sweep is vacuous"
    );
}

/// One boundary draw, as in `tests/chain_properties.rs`: next segment's
/// clock ratio (per-mille of base), phase (per-mille of period), station
/// count, and mixed-clock (`true`) vs single-clock (`false`) boundary.
type BoundaryDraw = (u64, u64, usize, bool);

fn assemble(
    base_period_ps: u64,
    capacity: usize,
    head_stations: usize,
    boundaries: &[BoundaryDraw],
) -> ChainSpec {
    let mut spec = ChainSpec::new(8, capacity).segment(base_period_ps, 0, head_stations);
    let mut prev = (base_period_ps, 0u64);
    for &(ratio_pm, phase_pm, stations, is_mcrs) in boundaries {
        if is_mcrs {
            let period = base_period_ps * ratio_pm / 1000;
            let phase = period * phase_pm / 1000;
            spec = spec
                .boundary("mixed_clock_rs")
                .segment(period, phase, stations);
            prev = (period, phase);
        } else {
            spec = spec.boundary("sync_rs").segment(prev.0, prev.1, stations);
        }
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fuzzed half of the differential: random 1–6-boundary chains,
    /// random stall/feed schedules, random clock ratios and phases — the
    /// compiled backend must reproduce the event kernel's fingerprint
    /// byte for byte on every draw.
    #[test]
    fn random_chains_agree_on_both_backends(
        seed in 0u64..1_000_000,
        base_period_ps in 4_000u64..14_000,
        capacity in 3usize..10,
        head_stations in 1usize..4,
        boundaries in prop::collection::vec(
            (300u64..3_000, 0u64..1_000, 1usize..4, any::<bool>()),
            1..7,
        ),
        n_items in 6usize..18,
        stall_at in 2u64..12,
        stall_len in 1u64..30,
    ) {
        let spec = assemble(base_period_ps, capacity, head_stations, &boundaries);
        prop_assert!(spec.validate().is_ok(), "draw must be valid: {:?}", spec.validate());
        let drives = [
            ChainDrive::clean(seed, n_items, spec.width),
            ChainDrive::with_stalls(seed, n_items, spec.width,
                                    vec![(stall_at, stall_at + stall_len)]),
        ];
        // Only the mixed-clock RS is a gate-level design: a draw whose
        // boundaries are all behavioural `sync_rs` macros legitimately
        // compiles nothing, and its differential is trivially (but still
        // correctly) equal.
        let expects_compiled = boundaries.iter().any(|&(_, _, _, is_mcrs)| is_mcrs);
        for drive in &drives {
            let (event, _) = fp(&spec, drive, Backend::Event);
            let (compiled, stats) = fp(&spec, drive, Backend::Compiled);
            prop_assert_eq!(&event, &compiled, "fuzzed chain diverged");
            if expects_compiled {
                prop_assert!(stats.compiled_gate_evals > 0, "draw compiled nothing");
            }
        }
    }
}

#[test]
fn comb_loop_is_refused_with_citation_and_event_fallback() {
    let mut sim = Simulator::new(0);
    let mut b = Builder::new(&mut sim);
    // A gate-level SR latch: cross-coupled NORs built from OR+INV pairs —
    // a 4-cell combinational feedback loop the compiler must refuse.
    let s = b.input("s");
    let r = b.input("r");
    let qb = b.input("qb"); // net only; driven by the feedback below
    let t1 = b.or2(r, qb);
    let q = b.inv(t1); // q  = NOR(r, qb)
    let t2 = b.or2(s, q);
    b.inv_onto(t2, qb); // qb = NOR(s, q): closes the loop
                        // ... plus an eligible straight-line region that must still compile.
    let a = b.input("a");
    let c = b.input("c");
    let y = b.and2(a, c);
    let netlist = b.finish();

    let report = install_compiled(&mut sim, &netlist, "mini");
    assert_eq!(
        report.diagnostics.len(),
        1,
        "exactly one refused region expected: {:?}",
        report.diagnostics
    );
    let diag = &report.diagnostics[0];
    assert!(
        diag.contains("refused combinational feedback region"),
        "diagnostic must name the refusal: {diag}"
    );
    for cell in ["OR0", "INV1", "OR2", "INV3"] {
        assert!(
            diag.contains(cell),
            "diagnostic must cite member cell {cell}: {diag}"
        );
    }
    assert!(
        diag.contains("stay on the event kernel"),
        "diagnostic must state the fallback: {diag}"
    );
    assert_eq!(report.compiled_gates, 1, "only the AND gate is acyclic");
    assert!(
        report.event_cells >= 4,
        "the four loop cells stay on the event kernel"
    );

    // The refused latch still latches on the event kernel, and the
    // compiled AND still computes.
    let [da, dc, dr, ds] = [a, c, r, s].map(|n| sim.driver(n));
    let drive = |sim: &mut Simulator, d, net, v, at_ns| {
        sim.drive_at(d, net, v, Time::from_ns(at_ns));
    };
    drive(&mut sim, da, a, Logic::H, 0);
    drive(&mut sim, dc, c, Logic::H, 0);
    drive(&mut sim, dr, r, Logic::L, 0);
    drive(&mut sim, ds, s, Logic::H, 1); // set pulse
    drive(&mut sim, ds, s, Logic::L, 5);
    sim.run_until(Time::from_ns(8)).expect("runs");
    assert_eq!(sim.value(y), Logic::H, "compiled AND output");
    assert_eq!(sim.value(q), Logic::H, "latch set through the event loop");
    drive(&mut sim, dr, r, Logic::H, 10); // reset pulse
    drive(&mut sim, dr, r, Logic::L, 14);
    sim.run_until(Time::from_ns(18)).expect("runs");
    assert_eq!(sim.value(q), Logic::L, "latch reset through the event loop");
    assert!(sim.stats().compiled_gate_evals > 0);
}
