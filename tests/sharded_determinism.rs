//! The sharded runner's determinism contract, end to end.
//!
//! The whole point of `--shards N` is that it is *invisible*: the merged
//! run must be byte-for-byte the run a single simulator would have
//! produced — same toggle counts, same violations, same source/sink
//! journals with the same timestamps, same per-boundary reports. These
//! tests pin that contract at every shard count for the topologies the
//! benches exercise:
//!
//! * a heterogeneous chain (async micropipeline head, mixed-clock RS and
//!   single-clock RS boundaries) at 1/2/3 shards, clean and stalled;
//! * a plesiochronous relay ladder at 1/2/4/8 shards;
//! * the single-shard path, which must bypass the lockstep protocol
//!   entirely and report kernel counters identical across invocations
//!   (the chain-level half of the `SimStats` parity check — the
//!   engine-level half lives in `mtf-sim`'s `shard` unit tests);
//! * the registry's single-FIFO designs, which the domain partitioner
//!   must refuse to split (their two clock domains are coupled through
//!   the synchronized full/empty control plane).

use mtf_core::design::DesignRegistry;
use mtf_core::{partition_design, FifoParams};
use mtf_lis::{plan_chain_shards, run_chain_sharded, verification_stalls, ChainDrive, ChainSpec};

/// Async head into three sync domains: one MCRS hop, then a same-domain
/// `sync_rs` hop — every boundary design the composer knows in one spec.
fn heterogeneous_spec() -> ChainSpec {
    ChainSpec::new(8, 4)
        .with_async_head(3)
        .segment(9_000, 0, 2)
        .boundary("mixed_clock_rs")
        .segment(12_000, 3_000, 1)
        .boundary("sync_rs")
        .segment(12_000, 3_000, 1)
}

/// A small plesiochronous relay ladder: every segment its own domain.
fn ladder_spec(segments: usize) -> ChainSpec {
    let mut spec = ChainSpec::new(8, 4);
    for i in 0..segments as u64 {
        if i > 0 {
            spec = spec.boundary("mixed_clock_rs");
        }
        spec = spec.segment(9_973 + 37 * i, (257 * i) % 4_000, 1);
    }
    spec
}

#[test]
fn heterogeneous_chain_is_shard_count_invariant() {
    let spec = heterogeneous_spec();
    let drive = ChainDrive::clean(11, 10, spec.width);
    let base = run_chain_sharded(&spec, &drive, 1).expect("single shard runs");
    assert_eq!(base.run.delivered.len(), 10, "chain must be lossless");
    for shards in [2usize, 3] {
        let run = run_chain_sharded(&spec, &drive, shards).expect("sharded run");
        assert_eq!(run.shards, shards);
        assert_eq!(
            run.fingerprint, base.fingerprint,
            "{shards} shards diverged from the single-shard run"
        );
        assert_eq!(run.fingerprint.digest(), base.fingerprint.digest());
    }
}

#[test]
fn stalled_heterogeneous_chain_is_shard_count_invariant() {
    let spec = heterogeneous_spec();
    let drive = ChainDrive::with_stalls(23, 10, spec.width, verification_stalls());
    let base = run_chain_sharded(&spec, &drive, 1).expect("single shard runs");
    let sharded = run_chain_sharded(&spec, &drive, 3).expect("sharded run");
    assert_eq!(
        sharded.fingerprint, base.fingerprint,
        "sink back-pressure broke cross-shard determinism"
    );
}

#[test]
fn relay_ladder_is_shard_count_invariant_up_to_eight() {
    let spec = ladder_spec(8);
    let drive = ChainDrive::clean(5, 8, spec.width);
    let base = run_chain_sharded(&spec, &drive, 1).expect("single shard runs");
    assert_eq!(base.run.delivered, base.run.sent, "ladder must be FIFO");
    for shards in [2usize, 4, 8] {
        let run = run_chain_sharded(&spec, &drive, shards).expect("sharded run");
        assert_eq!(
            run.fingerprint, base.fingerprint,
            "{shards}-way ladder diverged"
        );
        // The protocol actually ran: boundary events crossed, and the
        // conservative lookahead had to send null messages.
        let sent: u64 = run.shard_stats.iter().map(|s| s.events_sent).sum();
        let nulls: u64 = run.shard_stats.iter().map(|s| s.null_messages).sum();
        assert!(sent > 0, "{shards} shards exchanged no boundary events");
        assert!(nulls > 0, "{shards} shards sent no lookahead grants");
    }
}

#[test]
fn single_shard_bypasses_the_protocol_and_reports_stable_counters() {
    let spec = heterogeneous_spec();
    let drive = ChainDrive::clean(7, 8, spec.width);
    let a = run_chain_sharded(&spec, &drive, 1).expect("first run");
    let b = run_chain_sharded(&spec, &drive, 1).expect("second run");

    assert_eq!(a.shard_stats.len(), 1);
    let st = &a.shard_stats[0];
    // No links → no lockstep: one plain `run_until`, zero protocol traffic.
    assert_eq!(st.events_sent, 0);
    assert_eq!(st.events_received, 0);
    assert_eq!(st.null_messages, 0);
    assert!(st.rounds <= 1, "unlinked shard ran {} rounds", st.rounds);

    // The kernel counters are a pure function of the elaborated design:
    // byte-identical across invocations, exactly like the pre-sharding
    // single-simulator path they extend.
    assert_eq!(a.shard_stats[0].sim, b.shard_stats[0].sim);
    assert_eq!(a.fingerprint, b.fingerprint);
}

#[test]
fn plan_degrades_gracefully_past_the_domain_count() {
    let spec = ladder_spec(4);
    // More shards than segments: the plan clamps, nothing is empty.
    let plan = plan_chain_shards(&spec, 16);
    assert!(plan.len() <= 4);
    assert_eq!(plan.iter().map(|r| r.len()).sum::<usize>(), 4);
    let drive = ChainDrive::clean(3, 6, spec.width);
    let base = run_chain_sharded(&spec, &drive, 1).expect("single shard runs");
    let over = run_chain_sharded(&spec, &drive, 16).expect("over-sharded run");
    assert_eq!(over.fingerprint, base.fingerprint);
}

#[test]
fn registry_fifos_partition_to_one_effective_shard() {
    // The table-1 designs are single FIFOs whose clock domains are
    // coupled through the synchronized full/empty detectors: `--shards`
    // on those benches must report "cannot split" rather than silently
    // running unsharded. This is the same shared domain-inference pass
    // the netlist lint uses, so sim and lint agree by construction.
    for design in DesignRegistry::table1().iter() {
        let name = design.kind().name();
        let params = FifoParams::new(4, 8);
        if design.supports(params).is_err() {
            continue;
        }
        let report = partition_design(design, params).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.domains.len() >= 2,
            "{name}: expected both clock domains"
        );
        assert_eq!(
            report.effective_shards, 1,
            "{name}: a coupled FIFO must not be splittable"
        );
    }
}
