//! Experiment E7 — the bi-modal empty detector's deadlock-avoidance claim
//! (paper Section 3.2).
//!
//! A plain anticipating-empty detector declares a one-item FIFO "empty"
//! and would stall the receiver forever with the item stranded inside. The
//! bi-modal `ne`/`oe` combination must serve it. These tests attack the
//! one-item state from every schedule proptest can dream up.

use mtf_core::env::{SyncConsumer, SyncProducer};
use mtf_core::{DesignKind, FifoParams, MixedClockFifo};
use mtf_gates::Builder;
use mtf_lis::chain::{run_chain, ChainDrive, ChainSpec};
use mtf_mc::designs::{fifo_model, BUDGET, SYNC_STAGES};
use mtf_mc::{check_chain, check_fifo, ChainModel, Property};
use mtf_sim::{ClockGen, Simulator, Time};
use proptest::prelude::*;

/// Runs one scenario; returns (items out, producer accepted count).
fn run(
    seed: u64,
    capacity: usize,
    t_put_ps: u64,
    t_get_ps: u64,
    items: &[u64],
    put_every: u64,
    get_every: u64,
) -> (Vec<u64>, usize) {
    let mut sim = Simulator::new(seed);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ps(t_put_ps));
    ClockGen::builder(Time::from_ps(t_get_ps))
        .phase(Time::from_ps(seed % t_get_ps))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    let f = MixedClockFifo::build(&mut b, FifoParams::new(capacity, 8), clk_put, clk_get);
    drop(b.finish());
    let pj = SyncProducer::spawn_every(
        &mut sim,
        "prod",
        clk_put,
        f.req_put,
        &f.data_put,
        f.full,
        items.to_vec(),
        put_every,
    );
    let cj = SyncConsumer::spawn_every(
        &mut sim,
        "cons",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
        get_every,
    );
    // Generous horizon: every schedule below finishes well within this.
    let horizon = Time::from_ps(
        (items.len() as u64 + 60) * t_put_ps.max(t_get_ps) * put_every.max(get_every) * 4,
    );
    sim.run_until(horizon).expect("no simulator error");
    (cj.values(), pj.len())
}

/// The distilled deadlock case: exactly one item, receiver already
/// requesting. `oe` must dominate and deliver it.
#[test]
fn one_item_is_always_served() {
    for seed in 0..8 {
        let (got, _) = run(seed, 4, 10_000, 13_000, &[0xEE], 1, 1);
        assert_eq!(got, vec![0xEE], "seed {seed}: the last item deadlocked");
    }
}

/// The paper's subtle sub-case: a get drains the FIFO to one item and the
/// receiver *keeps* requesting — `ne` must first block the underflow, then
/// `oe` must un-stall for the survivor.
#[test]
fn drain_to_one_then_fetch() {
    for seed in 0..6 {
        let items = [1u64, 2, 3];
        let (got, _) = run(seed, 4, 9_000, 9_500, &items, 1, 1);
        assert_eq!(got, items.to_vec(), "seed {seed}");
    }
}

/// Trickle gets: after each dequeue the receiver goes idle, so every item
/// exercises the oe-dominates-after-idle path.
#[test]
fn idle_gaps_between_gets() {
    let items: Vec<u64> = (10..30).collect();
    let (got, _) = run(3, 4, 10_000, 11_000, &items, 1, 9);
    assert_eq!(got, items);
}

/// The heterogeneous-chain version of the deadlock attack: an async
/// micropipeline head feeds an ASRS, then an MCRS boundary into a third
/// clock domain, and the sink raises `stopIn` for long windows early on —
/// while the upstream ASRS is still mid-handshake filling the chain. If
/// either boundary's bi-modal `ne`/`oe` empty detector wedged (declared
/// empty and never re-armed), the stranded items would never reach the
/// sink and the delivered list would come up short.
#[test]
fn heterogeneous_chain_survives_sink_backpressure_mid_handshake() {
    let spec = ChainSpec::new(8, 4)
        .with_async_head(3)
        .segment(10_000, 0, 2)
        .boundary("mixed_clock_rs")
        .segment(14_000, 3_700, 2);
    let items = 48;
    // Stall the sink almost immediately (cycle 2), long before the async
    // producer's four-phase handshakes have filled the pipeline, then
    // again mid-drain; each window forces occupancy to the one-item edge
    // cases on release.
    let drive = ChainDrive::with_stalls(7, items, 8, vec![(2, 40), (44, 46), (60, 110)]);
    let run = run_chain(&spec, &drive).expect("chain elaborates and runs");
    assert_eq!(
        run.sent.len(),
        items,
        "source wedged: upstream back-pressure never released"
    );
    assert_eq!(
        run.delivered, run.sent,
        "items lost or reordered — a boundary deadlocked under stopIn"
    );
    for b in &run.report.boundaries {
        assert_eq!(
            b.put_accepts, b.get_delivers,
            "boundary {} stranded items",
            b.design
        );
    }
}

/// Formal twin of [`one_item_is_always_served`]: the same claim decided
/// exhaustively instead of by schedule sampling. The abstract mixed-clock
/// model with a single token proves empty-liveness over *every* fair
/// schedule — the `oe` path always serves the stranded item — while the
/// paper's broken detector (anticipating `ne` alone) refutes exactly this
/// property. The sampled simulation above must agree with the proof.
#[test]
fn formal_twin_one_item_is_always_served() {
    let mut model = fifo_model(DesignKind::MixedClock, 4);
    model.max_tokens = 1;
    let check = check_fifo(&model, BUDGET).expect("in budget");
    assert!(
        check.is_clean(),
        "{}",
        check.first_counterexample().unwrap()
    );

    let broken = fifo_model(DesignKind::MixedClock, 4).anticipating_only();
    let refuted = check_fifo(&broken, BUDGET).expect("in budget");
    assert!(
        !refuted
            .verdict(Property::EmptyLiveness)
            .expect("checked")
            .holds(),
        "the ne-only detector must wedge — that is the deadlock this file attacks"
    );

    // Simulation side of the twin: same one-item scenario, item served.
    let (got, _) = run(1, 4, 10_000, 13_000, &[0xEE], 1, 1);
    assert_eq!(got, vec![0xEE], "simulation disagrees with the proof");
}

/// Formal twin of
/// [`heterogeneous_chain_survives_sink_backpressure_mid_handshake`]: the
/// two-boundary chain model at cap 3+4, where the sink may stop
/// requesting at *any* round (every stopIn window, not three sampled
/// ones), proves lossless, deadlock-free and live. The simulated stopIn
/// scenario must agree with the exhaustive verdict.
#[test]
fn formal_twin_heterogeneous_chain_stop_in_mid_handshake() {
    let check = check_chain(&ChainModel::new(3, 4, SYNC_STAGES), 1 << 22).expect("in budget");
    assert!(
        check.is_clean(),
        "{}",
        check.first_counterexample().unwrap()
    );

    let spec = ChainSpec::new(8, 4)
        .with_async_head(3)
        .segment(10_000, 0, 2)
        .boundary("mixed_clock_rs")
        .segment(14_000, 3_700, 2);
    let drive = ChainDrive::with_stalls(7, 48, 8, vec![(2, 40), (44, 46), (60, 110)]);
    let run = run_chain(&spec, &drive).expect("chain elaborates and runs");
    assert_eq!(run.sent.len(), 48, "source wedged");
    assert_eq!(
        run.delivered, run.sent,
        "simulation disagrees with the proof"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any item count, any capacity, any clock pair within the 2x
    /// envelope, any duty pattern: everything in must come out, in order,
    /// with nothing left behind.
    #[test]
    fn no_schedule_deadlocks_or_reorders(
        seed in 0u64..1_000,
        capacity in 3usize..10,
        t_put in 8_000u64..16_000,
        ratio_pct in 60u64..190, // t_get = t_put * ratio / 100, inside 2x either way
        n_items in 1usize..24,
        put_every in 1u64..5,
        get_every in 1u64..5,
    ) {
        let t_get = (t_put * ratio_pct / 100).max(t_put / 2 + 500).min(t_put * 2 - 500);
        let items: Vec<u64> = (0..n_items as u64).map(|i| (i * 29 + seed) % 256).collect();
        let (got, accepted) = run(seed, capacity, t_put, t_get, &items, put_every, get_every);
        prop_assert_eq!(accepted, items.len(), "producer stalled forever");
        prop_assert_eq!(got, items, "loss, duplication, reorder, or deadlock");
    }
}
