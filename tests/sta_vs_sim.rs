//! Consistency between the two timing views: the clock period static
//! timing analysis declares safe must simulate cleanly (no setup/hold
//! reports, correct data), and a substantially faster clock must trip the
//! flip-flops' setup checkers — i.e. the STA bound is neither vacuous nor
//! wildly conservative.

use mtf_bench::measure::periods;
use mtf_core::design::MIXED_CLOCK;
use mtf_core::env::{SyncConsumer, SyncProducer};
use mtf_core::{FifoParams, MixedClockFifo};
use mtf_gates::{Builder, CellDelays};
use mtf_sim::{ClockGen, MetaModel, Simulator, Time, ViolationKind};

/// Simulates a transfer with both clocks at the given periods; returns
/// (setup/hold violation count, stream intact?).
fn simulate_at(params: FifoParams, t_put: Time, t_get: Time, seed: u64) -> (usize, bool) {
    let mut sim = Simulator::new(seed);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    ClockGen::spawn_simple(&mut sim, clk_put, t_put);
    ClockGen::builder(t_get)
        .phase(Time::from_ps(seed * 131 % t_get.as_ps()))
        .spawn(&mut sim, clk_get);
    // Same calibration as the STA measurements; ideal metastability so the
    // only reports are genuine setup/hold trips.
    let mut b = Builder::with_delays(&mut sim, CellDelays::hp06_custom(), MetaModel::ideal());
    let f = MixedClockFifo::build(&mut b, params, clk_put, clk_get);
    let nl = b.finish();
    mtf_timing::Tech::hp06_custom().annotate(&nl);
    let items: Vec<u64> = (0..60).collect();
    let pj = SyncProducer::spawn(
        &mut sim,
        "prod",
        clk_put,
        f.req_put,
        &f.data_put,
        f.full,
        items.clone(),
    );
    let cj = SyncConsumer::spawn(
        &mut sim,
        "cons",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
    );
    sim.run_until(Time::from_us(10)).unwrap();
    let viol = sim.violations_of(ViolationKind::Setup).count()
        + sim.violations_of(ViolationKind::Hold).count();
    let ok = pj.len() == items.len() && cj.values() == items;
    (viol, ok)
}

#[test]
fn sta_period_simulates_cleanly() {
    for &(cap, w) in &[(4usize, 8usize), (8, 8), (8, 16)] {
        let params = FifoParams::new(cap, w);
        let p = periods(&MIXED_CLOCK, params);
        // 2% guard band over the STA bound.
        let t_put = Time::from_ps(p.put.unwrap().as_ps() * 51 / 50);
        let t_get = Time::from_ps(p.get.as_ps() * 51 / 50);
        for seed in 0..3 {
            let (viol, ok) = simulate_at(params, t_put, t_get, seed);
            assert_eq!(viol, 0, "{params} seed {seed}: clean at the STA period");
            assert!(ok, "{params} seed {seed}: data intact at the STA period");
        }
    }
}

#[test]
fn overclocking_trips_the_checkers() {
    let params = FifoParams::new(8, 8);
    let p = periods(&MIXED_CLOCK, params);
    // 40% beyond the STA bound: the critical path no longer fits.
    let t_put = Time::from_ps(p.put.unwrap().as_ps() * 6 / 10);
    let t_get = Time::from_ps(p.get.as_ps() * 6 / 10);
    let mut any_viol = 0;
    for seed in 0..3 {
        let (viol, _ok) = simulate_at(params, t_put, t_get, seed);
        any_viol += viol;
    }
    assert!(
        any_viol > 0,
        "a 40% overclock must produce setup violations — otherwise the STA \
         bound is meaninglessly conservative"
    );
}

#[test]
fn binary_search_localizes_the_working_boundary() {
    // Independent cross-check: simulation's own working/broken boundary
    // sits at or below the STA bound (STA must be safe) and not absurdly
    // below it (STA must not be vacuous). The gap that exists comes from
    // STA charging worst-case paths that this particular workload and
    // clock phase never exercise.
    let factor = mtf_bench::measure::sim_fmax_factor_mixed_clock(FifoParams::new(8, 8));
    assert!(
        factor <= 1.03,
        "simulation must be clean at the STA bound (first-clean factor {factor:.2})"
    );
    assert!(
        factor >= 0.45,
        "a boundary this far below the STA bound means the analysis is          uselessly conservative (factor {factor:.2})"
    );
}

#[test]
fn sta_bound_is_tight_ish() {
    // The first violations should appear within ~35% below the STA period
    // (the gap is environment-delay modelling slack, not dead margin).
    let params = FifoParams::new(8, 8);
    let p = periods(&MIXED_CLOCK, params);
    let base_put = p.put.unwrap().as_ps();
    let base_get = p.get.as_ps();
    let mut first_bad: Option<u64> = None;
    for pct in (55..=100).step_by(5) {
        let (viol, ok) = simulate_at(
            params,
            Time::from_ps(base_put * pct / 100),
            Time::from_ps(base_get * pct / 100),
            7,
        );
        if viol > 0 || !ok {
            first_bad = Some(pct);
        }
    }
    let pct = first_bad.expect("overclocking must eventually fail");
    assert!(
        pct >= 55,
        "violations should appear somewhere in the sweep (first at {pct}%)"
    );
}
