//! Experiment E11 — the paper's related-work claims, as assertions
//! (the `related_work` binary prints the full comparison).

use mtf_bench::measure::{latency, periods};
use mtf_core::baseline::{GrayPointerFifo, PerCellSyncFifo, SeizovicFifo};
use mtf_core::design::{ASYNC_SYNC, MIXED_CLOCK};
use mtf_core::env::{SyncConsumer, SyncProducer};
use mtf_core::{FifoParams, MixedClockFifo};
use mtf_gates::{Builder, CellDelays};
use mtf_sim::{ClockGen, Logic, MetaModel, Simulator, Time};
use mtf_timing::area;

/// Empty-FIFO latency (ns) of the Gray-pointer baseline at the mixed-clock
/// design's own fmax clocks, best alignment over a small sweep.
fn gray_min_latency(params: FifoParams) -> f64 {
    let p = periods(&MIXED_CLOCK, params);
    let (t_put, t_get) = (p.put.unwrap(), p.get);
    let mut best = f64::INFINITY;
    for s in 0..4 {
        let offset = Time::from_ps(t_get.as_ps() * s / 4);
        let mut sim = Simulator::new(9);
        let clk_put = sim.net("clk_put");
        let clk_get = sim.net("clk_get");
        ClockGen::builder(t_put)
            .phase(offset)
            .spawn(&mut sim, clk_put);
        ClockGen::spawn_simple(&mut sim, clk_get, t_get);
        let mut b = Builder::with_delays(&mut sim, CellDelays::hp06_custom(), MetaModel::ideal());
        let f = GrayPointerFifo::build(&mut b, params, clk_put, clk_get);
        let nl = b.finish();
        mtf_timing::Tech::hp06_custom().annotate(&nl);
        let cj = SyncConsumer::spawn(
            &mut sim,
            "c",
            clk_get,
            f.req_get,
            &f.data_get,
            f.valid_get,
            1,
        );
        let warm = t_get * 40;
        let k = (warm.as_ps() + t_put.as_ps() - 1 - offset.as_ps() % t_put.as_ps()) / t_put.as_ps();
        let t0 = offset + t_put * k + Time::from_ps(100);
        for (i, &dn) in f.data_put.iter().enumerate() {
            let d = sim.driver(dn);
            sim.drive_at(d, dn, Logic::from_bool((0xA5 >> i) & 1 == 1), t0);
        }
        let rd = sim.driver(f.req_put);
        sim.drive_at(rd, f.req_put, Logic::L, Time::ZERO);
        sim.drive_at(rd, f.req_put, Logic::H, t0);
        sim.run_until(t0 + t_get * 60).unwrap();
        if let Some(t) = cj.time_of(0) {
            best = best.min((t - t0).as_ps() as f64 / 1000.0);
        }
    }
    best
}

#[test]
fn paper_beats_pointer_fifo_on_latency() {
    let params = FifoParams::new(8, 8);
    let ours = latency(&MIXED_CLOCK, params, 4);
    let gray = gray_min_latency(params);
    assert!(
        gray > ours.min_ns * 1.1,
        "the pointer FIFO must pay visibly more empty-FIFO latency \
         (ours {:.2} ns, gray {gray:.2} ns)",
        ours.min_ns
    );
}

#[test]
fn paper_beats_seizovic_by_depth_independence() {
    // Seizovic latency at depth d ≈ 2·d cycles; ours is fixed. Measure
    // depth 6 at a 10 ns clock against our async-sync FIFO latency.
    let mut sim = Simulator::new(10);
    let clk = sim.net("clk");
    ClockGen::spawn_simple(&mut sim, clk, Time::from_ns(10));
    let port = SeizovicFifo::spawn(&mut sim, "szv", clk, 8, 6);
    let t0 = Time::from_ns(400);
    for (i, &dn) in port.put_data.iter().enumerate() {
        let d = sim.driver(dn);
        sim.drive_at(d, dn, Logic::from_bool((0x5A >> i) & 1 == 1), t0);
    }
    let rd = sim.driver(port.put_req);
    sim.drive_at(rd, port.put_req, Logic::L, Time::ZERO);
    sim.drive_at(rd, port.put_req, Logic::H, t0 + Time::from_ps(200));
    sim.drive_at(rd, port.put_req, Logic::L, t0 + Time::from_ns(40));
    let cj = SyncConsumer::spawn(
        &mut sim,
        "c",
        clk,
        port.req_get,
        &port.data_get,
        port.valid_get,
        1,
    );
    sim.run_until(Time::from_us(3)).unwrap();
    let szv_ns = (cj.time_of(0).expect("delivered") - t0).as_ps() as f64 / 1000.0;
    let ours = latency(&ASYNC_SYNC, FifoParams::new(8, 8), 4);
    assert!(
        szv_ns > ours.min_ns * 5.0,
        "pipeline synchronization at depth 6 must be far slower \
         (ours {:.1} ns, Seizovic {szv_ns:.1} ns)",
        ours.min_ns
    );
}

#[test]
fn paper_beats_per_cell_sync_on_area() {
    for capacity in [8usize, 16] {
        let build = |per_cell: bool| {
            let mut sim = Simulator::new(0);
            let clk_put = sim.net("clk_put");
            let clk_get = sim.net("clk_get");
            let mut b = Builder::new(&mut sim);
            if per_cell {
                let _ =
                    PerCellSyncFifo::build(&mut b, FifoParams::new(capacity, 8), clk_put, clk_get);
            } else {
                let _ =
                    MixedClockFifo::build(&mut b, FifoParams::new(capacity, 8), clk_put, clk_get);
            }
            area(&b.finish())
        };
        let ours = build(false);
        let intel = build(true);
        assert!(intel.total > ours.total, "capacity {capacity}");
        assert!(
            intel.flops as f64 > ours.flops as f64 * 1.3,
            "capacity {capacity}: synchronizer flop area must dominate"
        );
    }
}

#[test]
fn all_baselines_are_still_correct_fifos() {
    // The comparison is only meaningful if the baselines work. (Their own
    // unit tests cover more; this guards the integration configuration.)
    let items: Vec<u64> = (0..30).map(|i| (i * 91) % 256).collect();

    // Gray-pointer.
    let mut sim = Simulator::new(11);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ns(10));
    ClockGen::builder(Time::from_ns(14))
        .phase(Time::from_ps(3_300))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    let f = GrayPointerFifo::build(&mut b, FifoParams::new(8, 8), clk_put, clk_get);
    drop(b.finish());
    let _pj = SyncProducer::spawn(
        &mut sim,
        "p",
        clk_put,
        f.req_put,
        &f.data_put,
        f.full,
        items.clone(),
    );
    let cj = SyncConsumer::spawn(
        &mut sim,
        "c",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
    );
    sim.run_until(Time::from_us(10)).unwrap();
    assert_eq!(cj.values(), items, "gray-pointer");

    // Per-cell sync.
    let mut sim = Simulator::new(12);
    let clk_put = sim.net("clk_put");
    let clk_get = sim.net("clk_get");
    ClockGen::spawn_simple(&mut sim, clk_put, Time::from_ns(9));
    ClockGen::builder(Time::from_ns(11))
        .phase(Time::from_ps(1_700))
        .spawn(&mut sim, clk_get);
    let mut b = Builder::new(&mut sim);
    let f = PerCellSyncFifo::build(&mut b, FifoParams::new(8, 8), clk_put, clk_get);
    drop(b.finish());
    let _pj = SyncProducer::spawn(
        &mut sim,
        "p",
        clk_put,
        f.req_put,
        &f.data_put,
        f.full,
        items.clone(),
    );
    let cj = SyncConsumer::spawn(
        &mut sim,
        "c",
        clk_get,
        f.req_get,
        &f.data_get,
        f.valid_get,
        items.len() as u64,
    );
    sim.run_until(Time::from_us(10)).unwrap();
    assert_eq!(cj.values(), items, "per-cell sync");
}
