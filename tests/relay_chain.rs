//! Experiment E9 — relay-station chains across timing boundaries
//! (paper Section 5, Figs. 11 and 14).

use mtf_async::{micropipeline, FourPhaseProducer};
use mtf_core::design::MIXED_CLOCK_RS;
use mtf_core::env::{PacketSink, PacketSource};
use mtf_core::{AsyncSyncRelayStation, FifoParams, MixedClockRelayStation};
use mtf_gates::Builder;
use mtf_lis::{connect, connect_bus, splice_stream_design, RelayChain};
use mtf_sim::{ClockGen, Simulator, Time};

/// Full Fig. 11a topology with a clock boundary: SRS chain → MCRS → SRS
/// chain, under an adversarial stall schedule. The boundary design goes
/// in through the design layer (`splice_stream_design` takes any
/// registered stream-protocol design).
fn mixed_clock_system(
    seed: u64,
    t_a_ps: u64,
    t_b_ps: u64,
    stations_a: usize,
    stations_b: usize,
    stalls: Vec<(u64, u64)>,
    n: u64,
) -> (Vec<u64>, Vec<u64>) {
    let mut sim = Simulator::new(seed);
    let clk_a = sim.net("clk_a");
    let clk_b = sim.net("clk_b");
    ClockGen::spawn_simple(&mut sim, clk_a, Time::from_ps(t_a_ps));
    ClockGen::builder(Time::from_ps(t_b_ps))
        .phase(Time::from_ps(seed % t_b_ps))
        .spawn(&mut sim, clk_b);
    let chain_a = RelayChain::spawn(&mut sim, "a", clk_a, 8, stations_a, Time::from_ns(1));
    let chain_b = RelayChain::spawn(&mut sim, "b", clk_b, 8, stations_b, Time::from_ns(1));
    splice_stream_design(
        &mut sim,
        &MIXED_CLOCK_RS,
        FifoParams::new(8, 8),
        clk_a,
        clk_b,
        &chain_a.port,
        &chain_b.port,
    )
    .expect("MCRS is a stream design");

    let packets: Vec<Option<u64>> = (0..n).map(|v| Some(v % 256)).collect();
    let sj = PacketSource::spawn(
        &mut sim,
        "src",
        clk_a,
        chain_a.port.in_valid,
        &chain_a.port.in_data,
        chain_a.port.stop_out,
        packets,
    );
    let kj = PacketSink::spawn(
        &mut sim,
        "sink",
        clk_b,
        &chain_b.port.out_data,
        chain_b.port.out_valid,
        chain_b.port.stop_in,
        stalls,
    );
    sim.run_until(Time::from_us(40)).unwrap();
    (sj.values(), kj.values())
}

#[test]
fn boundary_chain_is_lossless() {
    let (sent, got) = mixed_clock_system(1, 3_125, 4_000, 3, 2, vec![], 150);
    assert_eq!(sent.len(), 150);
    assert_eq!(got, sent);
}

#[test]
fn boundary_chain_survives_nested_stalls() {
    let (sent, got) = mixed_clock_system(
        2,
        3_125,
        4_000,
        3,
        2,
        vec![(20, 45), (60, 61), (70, 120), (200, 230)],
        200,
    );
    assert_eq!(
        got, sent,
        "stalls rippling across the boundary lose nothing"
    );
}

#[test]
fn boundary_chain_with_fast_consumer_domain() {
    // The consumer domain is the *faster* one: the MCRS runs empty and
    // must emit bubbles rather than stale packets.
    let (sent, got) = mixed_clock_system(3, 5_000, 3_000, 2, 3, vec![(30, 50)], 120);
    assert_eq!(got, sent);
}

#[test]
fn fig14_async_to_sync_system() {
    // Fig. 14: async domain → ARS (micropipeline) chain → ASRS → SRS
    // chain → sync receiver.
    let mut sim = Simulator::new(4);
    let clk = sim.net("clk");
    ClockGen::builder(Time::from_ps(4_217))
        .phase(Time::from_ps(1_000))
        .spawn(&mut sim, clk);
    let mut b = Builder::new(&mut sim);
    let ars = micropipeline(&mut b, 4, 8);
    let asrs = AsyncSyncRelayStation::build(&mut b, FifoParams::new(8, 8), clk);
    drop(b.finish());
    let srs = RelayChain::spawn(&mut sim, "srs", clk, 8, 3, Time::from_ns(1));
    connect(&mut sim, ars.req_out, asrs.put_req);
    connect_bus(&mut sim, &ars.data_out, &asrs.put_data);
    connect(&mut sim, asrs.put_ack, ars.ack_out);
    connect(&mut sim, asrs.valid_get, srs.port.in_valid);
    connect_bus(&mut sim, &asrs.data_get, &srs.port.in_data);
    connect(&mut sim, srs.port.stop_out, asrs.stop_in);

    let items: Vec<u64> = (0..100).map(|i| (i * 7) % 256).collect();
    let ph = FourPhaseProducer::spawn(
        &mut sim,
        "prod",
        ars.req_in,
        ars.ack_in,
        &ars.data_in,
        items.clone(),
        Time::from_ps(400),
        Time::ZERO,
    );
    let kj = PacketSink::spawn(
        &mut sim,
        "sink",
        clk,
        &srs.port.out_data,
        srs.port.out_valid,
        srs.port.stop_in,
        vec![(40, 70)],
    );
    sim.run_until(Time::from_us(30)).unwrap();
    assert_eq!(ph.journal().len(), items.len(), "all handshakes completed");
    assert_eq!(
        kj.values(),
        items,
        "async-origin packets intact through the sync chain"
    );
}

#[test]
fn throughput_tracks_the_slower_domain() {
    let rate = |t_a: u64, t_b: u64| {
        let (_sent, _) = (0, 0); // silence unused in closure style
        let mut sim = Simulator::new(5);
        let clk_a = sim.net("clk_a");
        let clk_b = sim.net("clk_b");
        ClockGen::spawn_simple(&mut sim, clk_a, Time::from_ps(t_a));
        ClockGen::builder(Time::from_ps(t_b))
            .phase(Time::from_ps(700))
            .spawn(&mut sim, clk_b);
        let mut b = Builder::new(&mut sim);
        let rs = MixedClockRelayStation::build(&mut b, FifoParams::new(8, 8), clk_a, clk_b);
        drop(b.finish());
        let packets: Vec<Option<u64>> = (0..300).map(|v| Some(v % 256)).collect();
        let _sj = PacketSource::spawn(
            &mut sim,
            "src",
            clk_a,
            rs.valid_in,
            &rs.data_put,
            rs.stop_out,
            packets,
        );
        let kj = PacketSink::spawn(
            &mut sim,
            "sink",
            clk_b,
            &rs.data_get,
            rs.valid_get,
            rs.stop_in,
            vec![],
        );
        sim.run_until(Time::from_us(20)).unwrap();
        kj.ops_per_second(100).expect("steady state")
    };
    // 320 MHz -> 250 MHz: bound by the get side.
    let down = rate(3_125, 4_000);
    assert!(
        (down / 250e6 - 1.0).abs() < 0.06,
        "got {:.0} MHz",
        down / 1e6
    );
    // 250 MHz -> 320 MHz: bound by the put side.
    let up = rate(4_000, 3_125);
    assert!((up / 250e6 - 1.0).abs() < 0.06, "got {:.0} MHz", up / 1e6);
}
