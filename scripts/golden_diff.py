#!/usr/bin/env python3
"""Structural golden diff for mtf-bench-report-v1 JSON files.

Byte-comparing report JSON makes every harmless float-formatting change
a CI failure; this script compares structure exactly (same keys, same
array lengths, same strings) and numbers to a relative tolerance
instead.

    python3 scripts/golden_diff.py golden/lint.json /tmp/lint.json
    python3 scripts/golden_diff.py --rtol 1e-3 golden/chains.json /tmp/chains.json

Exits 0 when the files match, 1 with one line per mismatch otherwise.
"""

import argparse
import json
import math
import sys


def diff(golden, actual, rtol, path, out):
    """Appends a message to `out` for every mismatch under `path`."""
    if isinstance(golden, dict) and isinstance(actual, dict):
        for key in golden:
            if key not in actual:
                out.append(f"{path}: key '{key}' missing from actual")
            else:
                diff(golden[key], actual[key], rtol, f"{path}.{key}", out)
        for key in actual:
            if key not in golden:
                out.append(f"{path}: unexpected key '{key}'")
    elif isinstance(golden, list) and isinstance(actual, list):
        if len(golden) != len(actual):
            out.append(f"{path}: length {len(golden)} != {len(actual)}")
        for i, (g, a) in enumerate(zip(golden, actual)):
            diff(g, a, rtol, f"{path}[{i}]", out)
    elif isinstance(golden, bool) or isinstance(actual, bool):
        # bool is an int subclass; compare exactly and before the
        # numeric branch so True never matches 1.0.
        if golden is not actual:
            out.append(f"{path}: {golden!r} != {actual!r}")
    elif isinstance(golden, (int, float)) and isinstance(actual, (int, float)):
        if not math.isclose(golden, actual, rel_tol=rtol, abs_tol=rtol):
            out.append(f"{path}: {golden} != {actual} (rtol {rtol})")
    elif golden != actual:
        out.append(f"{path}: {golden!r} != {actual!r}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("golden", help="committed golden report")
    ap.add_argument("actual", help="freshly generated report")
    ap.add_argument(
        "--rtol",
        type=float,
        default=1e-6,
        help="relative (and absolute) tolerance for numeric leaves",
    )
    args = ap.parse_args()

    with open(args.golden) as f:
        golden = json.load(f)
    with open(args.actual) as f:
        actual = json.load(f)

    out = []
    diff(golden, actual, args.rtol, "$", out)
    if out:
        print(f"golden_diff: {args.actual} drifted from {args.golden}:")
        for line in out:
            print(f"  {line}")
        sys.exit(1)
    print(f"golden_diff: {args.actual} matches {args.golden} (rtol {args.rtol})")


if __name__ == "__main__":
    main()
